//! The AlleyOop Social application: the overlay at the top of Fig. 1.
//!
//! Owns the user-facing state (handle, feed, follows) and embeds its own
//! SOS middleware instance (§III: per-application instance, no daemon).
//! The application is "responsible for providing a user interface and
//! storing data to local or online storage systems" — here the interface
//! is programmatic (used by examples, tests and the repro harness), and
//! storage is the [`LocalDb`] plus cloud sync when online.

use crate::cloud::{Cloud, CloudError};
use crate::db::{LocalDb, PendingAction, ReceivedPost};
use sos_core::message::{MessageId, MessageKind};
use sos_core::middleware::{Sos, SosEvent};
use sos_core::routing::SchemeKind;
use sos_crypto::ca::Validator;
use sos_crypto::ed25519::SigningKey;
use sos_crypto::x25519::AgreementKey;
use sos_crypto::{DeviceIdentity, UserId};
use sos_net::PeerId;
use sos_sim::SimTime;

/// One AlleyOop Social installation on one device.
#[derive(Debug)]
pub struct AlleyOopApp {
    sos: Sos,
    db: LocalDb,
    handle: String,
    online: bool,
}

impl AlleyOopApp {
    /// The one-time signup flow of Fig. 2a: generate keys on-device,
    /// register with the cloud, receive the certificate and CA root, and
    /// assemble the middleware. Requires Internet — afterwards the app
    /// is fully functional offline.
    ///
    /// # Errors
    ///
    /// Propagates [`CloudError`] when the identifier is already taken.
    pub fn sign_up<R: rand::RngCore>(
        cloud: &mut Cloud,
        peer_id: PeerId,
        handle: &str,
        scheme: SchemeKind,
        now: SimTime,
        rng: &mut R,
    ) -> Result<AlleyOopApp, CloudError> {
        let user_id = UserId::from_str_padded(handle);
        let signing = SigningKey::generate(rng);
        let agreement = AgreementKey::generate(rng);
        let certificate = cloud.sign_up(
            user_id,
            handle,
            signing.verifying_key(),
            *agreement.public(),
            now.as_secs(),
        )?;
        let validator = Validator::new(cloud.root_certificate().clone());
        let identity = DeviceIdentity::new(user_id, signing, agreement, certificate, validator);
        Ok(AlleyOopApp {
            sos: Sos::new(peer_id, identity, scheme),
            db: LocalDb::new(),
            handle: handle.to_string(),
            online: false,
        })
    }

    /// The user's handle.
    pub fn handle(&self) -> &str {
        &self.handle
    }

    /// The user's 10-byte id.
    pub fn user_id(&self) -> UserId {
        self.sos.user_id()
    }

    /// The device's transport peer id.
    pub fn peer_id(&self) -> PeerId {
        self.sos.peer_id()
    }

    /// Immutable access to the embedded middleware.
    pub fn middleware(&self) -> &Sos {
        &self.sos
    }

    /// Mutable middleware access for the network driver (frame I/O).
    pub fn middleware_mut(&mut self) -> &mut Sos {
        &mut self.sos
    }

    /// The local database.
    pub fn db(&self) -> &LocalDb {
        &self.db
    }

    /// Whether the device currently has Internet connectivity.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Sets Internet availability (driven by the scenario; D2D
    /// dissemination works either way).
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Publishes a post: saved to the local database first (§V), then
    /// available for D2D dissemination immediately.
    pub fn post(&mut self, text: &str, now: SimTime) -> MessageId {
        let id = self
            .sos
            .post(MessageKind::Post, text.as_bytes().to_vec(), now)
            .expect("post text within size limits");
        self.db.insert_post(ReceivedPost {
            id,
            text: text.to_string(),
            created_at: now,
            received_at: now,
            hops: 0,
        });
        id
    }

    /// Sends an end-to-end encrypted direct message. The ciphertext
    /// rides the same opportunistic dissemination as posts (forwarders
    /// see only a sealed box); only the holder of the certificate's
    /// agreement key can read it.
    ///
    /// The recipient certificate is typically learned offline, from any
    /// bundle the recipient authored (forwarders relay originator
    /// certificates, Fig. 3b) — see [`AlleyOopApp::known_certificate`].
    ///
    /// Note: the message is authored by *this* user, so under
    /// interest-based routing it reaches the recipient via the sender's
    /// subscribers — the recipient should follow the sender (as friends
    /// do), or the app can be switched to epidemic for DM-heavy use.
    pub fn send_direct<R: rand::RngCore>(
        &mut self,
        rng: &mut R,
        recipient: &sos_crypto::Certificate,
        text: &str,
        now: SimTime,
    ) -> MessageId {
        let sealed = sos_crypto::sealed::seal(rng, &recipient.x25519_public, text.as_bytes())
            .expect("recipient certificate carries a valid agreement key");
        let mut payload = Vec::with_capacity(10 + sealed.len());
        payload.extend_from_slice(recipient.subject.as_bytes());
        payload.extend_from_slice(&sealed);
        self.sos
            .post(MessageKind::Direct, payload, now)
            .expect("sealed DM within size limits")
    }

    /// The best certificate this device knows for `user`: its own, or
    /// one attached to any stored bundle authored by `user`.
    pub fn known_certificate(&self, user: &UserId) -> Option<sos_crypto::Certificate> {
        if user == &self.user_id() {
            return Some(self.sos.identity().certificate().clone());
        }
        self.sos
            .store()
            .iter()
            .find(|b| &b.message.id.author == user)
            .map(|b| b.author_certificate.clone())
    }

    /// The decrypted direct-message inbox, oldest first.
    pub fn inbox(&self) -> &[crate::db::DirectMessage] {
        self.db.inbox()
    }

    /// Follows `user`: subscribes the routing layer and queues the
    /// action for cloud sync.
    pub fn follow(&mut self, user: UserId) {
        self.sos.subscribe(user);
        self.db.queue_action(PendingAction::Follow(user));
    }

    /// Unfollows `user`.
    pub fn unfollow(&mut self, user: &UserId) {
        self.sos.unsubscribe(user);
        self.db.queue_action(PendingAction::Unfollow(*user));
    }

    /// Users this account follows.
    pub fn following(&self) -> Vec<UserId> {
        self.sos.subscriptions().iter().copied().collect()
    }

    fn apply_received(&mut self, event: &SosEvent, received_at: Option<SimTime>) {
        let SosEvent::MessageReceived {
            id,
            kind,
            payload,
            created_at,
            hops,
            ..
        } = event
        else {
            return;
        };
        // Without a driver clock we conservatively stamp receptions with
        // the creation time (zero recorded delay); drivers should prefer
        // `process_events_at`.
        let received_at = received_at.unwrap_or(*created_at);
        match kind {
            MessageKind::Post => {
                self.db.insert_post(ReceivedPost {
                    id: *id,
                    text: String::from_utf8_lossy(payload).into_owned(),
                    created_at: *created_at,
                    received_at,
                    hops: *hops,
                });
            }
            MessageKind::Direct => {
                // Addressed DMs: first 10 bytes name the recipient; the
                // rest is a sealed box only that recipient can open.
                if payload.len() > 10 && payload[..10] == self.user_id().as_bytes()[..] {
                    if let Ok(plain) = self.sos.identity().open_sealed(&payload[10..]) {
                        self.db.push_direct(crate::db::DirectMessage {
                            from: id.author,
                            text: String::from_utf8_lossy(&plain).into_owned(),
                            created_at: *created_at,
                            received_at,
                        });
                    }
                }
            }
            MessageKind::Follow | MessageKind::Unfollow => {}
        }
    }

    /// Drains middleware events, applying received posts and direct
    /// messages to the local database. Returns the raw events for
    /// callers that track deliveries or security alerts.
    pub fn process_events(&mut self) -> Vec<SosEvent> {
        let events = self.sos.poll_events();
        for event in &events {
            self.apply_received(event, None);
        }
        events
    }

    /// Like [`AlleyOopApp::process_events`] but stamping receptions with
    /// the current time (the driver knows "now"; the middleware event
    /// does not carry it).
    pub fn process_events_at(&mut self, now: SimTime) -> Vec<SosEvent> {
        let events = self.sos.poll_events();
        for event in &events {
            self.apply_received(event, Some(now));
        }
        events
    }

    /// The user's feed: posts from followed users (and their own),
    /// newest first.
    pub fn feed(&self) -> Vec<&ReceivedPost> {
        let me = self.user_id();
        let mut posts: Vec<&ReceivedPost> = self
            .db
            .all_posts()
            .filter(|p| p.id.author == me || self.sos.subscriptions().contains(&p.id.author))
            .collect();
        posts.sort_by_key(|p| std::cmp::Reverse(p.created_at));
        posts
    }

    /// Synchronizes with the cloud: pushes queued follow actions and
    /// pulls the latest revocation list. No-op when offline (§V:
    /// "synchronizes the action with the cloud when the Internet becomes
    /// available").
    pub fn sync_with_cloud(&mut self, cloud: &mut Cloud, now: SimTime) {
        if !self.online {
            return;
        }
        let me = self.user_id();
        for action in self.db.drain_actions() {
            match action {
                PendingAction::Follow(user) => {
                    let _ = cloud.record_follow(me, user);
                }
                PendingAction::Unfollow(user) => {
                    cloud.record_unfollow(me, user);
                }
            }
        }
        let crl = cloud.revocation_list(now.as_secs());
        self.sos.identity_mut().validator_mut().install_crl(crl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sos_net::Frame;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn two_apps() -> (Cloud, AlleyOopApp, AlleyOopApp) {
        let mut cloud = Cloud::new("AlleyOop CA", [42u8; 32]);
        let mut r = rng(1);
        let alice = AlleyOopApp::sign_up(
            &mut cloud,
            PeerId(0),
            "alice",
            SchemeKind::InterestBased,
            SimTime::ZERO,
            &mut r,
        )
        .unwrap();
        let bob = AlleyOopApp::sign_up(
            &mut cloud,
            PeerId(1),
            "bob",
            SchemeKind::InterestBased,
            SimTime::ZERO,
            &mut r,
        )
        .unwrap();
        (cloud, alice, bob)
    }

    /// Exchange frames between two apps until quiescent.
    fn pump(a: &mut AlleyOopApp, b: &mut AlleyOopApp, now: SimTime) {
        let mut r = rng(9);
        let ad = a.middleware().advertisement(now);
        let mut queue: std::collections::VecDeque<(PeerId, PeerId, Frame)> = b
            .middleware_mut()
            .handle_frame(a.peer_id(), Frame::Advertisement(ad), now, &mut r)
            .into_iter()
            .map(|(dst, f)| (b.peer_id(), dst, f))
            .collect();
        let mut guard = 0;
        while let Some((src, dst, frame)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 10_000);
            let target = if dst == a.peer_id() { &mut *a } else { &mut *b };
            for (d, f) in target
                .middleware_mut()
                .handle_frame(src, frame, now, &mut r)
            {
                let s = target.peer_id();
                queue.push_back((s, d, f));
            }
        }
    }

    #[test]
    fn signup_post_follow_deliver() {
        let (_cloud, mut alice, mut bob) = two_apps();
        bob.follow(alice.user_id());
        alice.post("first post!", SimTime::from_secs(10));
        pump(&mut alice, &mut bob, SimTime::from_secs(20));
        bob.process_events_at(SimTime::from_secs(20));
        let feed = bob.feed();
        assert_eq!(feed.len(), 1);
        assert_eq!(feed[0].text, "first post!");
        assert_eq!(feed[0].hops, 1);
        assert_eq!(feed[0].delay().as_secs(), 10);
    }

    #[test]
    fn own_posts_in_feed() {
        let (_cloud, mut alice, _) = two_apps();
        alice.post("hello", SimTime::from_secs(5));
        assert_eq!(alice.feed().len(), 1);
        assert_eq!(alice.feed()[0].hops, 0);
    }

    #[test]
    fn duplicate_user_id_rejected() {
        let mut cloud = Cloud::new("AlleyOop CA", [42u8; 32]);
        let mut r = rng(2);
        let _alice = AlleyOopApp::sign_up(
            &mut cloud,
            PeerId(0),
            "alice",
            SchemeKind::Epidemic,
            SimTime::ZERO,
            &mut r,
        )
        .unwrap();
        let err = AlleyOopApp::sign_up(
            &mut cloud,
            PeerId(1),
            "alice",
            SchemeKind::Epidemic,
            SimTime::ZERO,
            &mut r,
        )
        .unwrap_err();
        assert_eq!(err, CloudError::UserIdTaken);
    }

    #[test]
    fn cloud_sync_pushes_follows_and_pulls_crl() {
        let (mut cloud, alice, mut bob) = two_apps();
        bob.follow(alice.user_id());
        assert_eq!(bob.db().pending_action_count(), 1);
        // Offline: sync is a no-op.
        bob.sync_with_cloud(&mut cloud, SimTime::from_secs(1));
        assert_eq!(bob.db().pending_action_count(), 1);
        // Online: actions flush and the cloud learns the edge.
        bob.set_online(true);
        bob.sync_with_cloud(&mut cloud, SimTime::from_secs(2));
        assert_eq!(bob.db().pending_action_count(), 0);
        assert!(cloud.follows_of(&bob.user_id()).contains(&alice.user_id()));
    }

    #[test]
    fn revoked_peer_rejected_after_crl_sync() {
        let (mut cloud, mut alice, mut bob) = two_apps();
        bob.follow(alice.user_id());
        // Alice's key is compromised; the cloud revokes her.
        cloud.revoke_user(&alice.user_id()).unwrap();
        // Bob syncs the CRL while online.
        bob.set_online(true);
        bob.sync_with_cloud(&mut cloud, SimTime::from_secs(1));
        // Alice posts and tries to deliver to Bob: handshake must fail.
        alice.post("evil post", SimTime::from_secs(2));
        pump(&mut alice, &mut bob, SimTime::from_secs(3));
        bob.process_events_at(SimTime::from_secs(3));
        assert_eq!(bob.feed().len(), 0, "no content from revoked identity");
        assert!(bob.middleware().stats().security_rejections > 0);
    }

    #[test]
    fn direct_message_end_to_end() {
        let (_cloud, mut alice, mut bob) = two_apps();
        let mut r = rng(44);
        // Bob follows alice, so her (sealed) DMs reach him under IB.
        bob.follow(alice.user_id());
        // Alice learns bob's certificate from... her own cloud-era copy
        // is not modelled; bob posts once so his certificate circulates.
        alice.follow(bob.user_id());
        bob.post("hello world", SimTime::from_secs(1));
        pump(&mut bob, &mut alice, SimTime::from_secs(2));
        alice.process_events_at(SimTime::from_secs(2));
        let bob_cert = alice
            .known_certificate(&bob.user_id())
            .expect("learned from bob's bundle");

        // Alice DMs bob through the DTN.
        alice.send_direct(
            &mut r,
            &bob_cert,
            "secret rendezvous",
            SimTime::from_secs(10),
        );
        pump(&mut alice, &mut bob, SimTime::from_secs(11));
        bob.process_events_at(SimTime::from_secs(11));
        assert_eq!(bob.inbox().len(), 1);
        assert_eq!(bob.inbox()[0].text, "secret rendezvous");
        assert_eq!(bob.inbox()[0].from, alice.user_id());
        // The DM is not in the public feed.
        assert!(bob.feed().iter().all(|p| p.text != "secret rendezvous"));
    }

    #[test]
    fn direct_message_unreadable_by_forwarders() {
        let (_cloud, mut alice, mut bob) = two_apps();
        let mut r = rng(45);
        alice.follow(bob.user_id());
        bob.follow(alice.user_id());
        bob.post("x", SimTime::from_secs(1));
        pump(&mut bob, &mut alice, SimTime::from_secs(2));
        alice.process_events_at(SimTime::from_secs(2));
        let bob_cert = alice.known_certificate(&bob.user_id()).unwrap();

        // Alice switches to epidemic so ANY device would carry the DM —
        // carriers see only the sealed box. Assert the two ends of the
        // property: the addressee decrypts; a non-addressee (here the
        // sender herself, lacking the recipient key) cannot.
        alice.middleware_mut().set_scheme(SchemeKind::Epidemic);
        alice.send_direct(&mut r, &bob_cert, "for bob only", SimTime::from_secs(5));
        pump(&mut alice, &mut bob, SimTime::from_secs(6));
        bob.process_events_at(SimTime::from_secs(6));
        assert_eq!(bob.inbox().len(), 1);
        assert!(
            alice.inbox().is_empty(),
            "sender cannot decrypt own sealed DM"
        );
    }

    #[test]
    fn unfollow_stops_future_pulls() {
        let (_cloud, mut alice, mut bob) = two_apps();
        bob.follow(alice.user_id());
        alice.post("one", SimTime::from_secs(1));
        pump(&mut alice, &mut bob, SimTime::from_secs(2));
        bob.process_events_at(SimTime::from_secs(2));
        assert_eq!(bob.feed().len(), 1);
        bob.unfollow(&alice.user_id());
        alice.post("two", SimTime::from_secs(3));
        pump(&mut alice, &mut bob, SimTime::from_secs(4));
        bob.process_events_at(SimTime::from_secs(4));
        // Feed no longer lists alice (subscription gone) and the second
        // post was never pulled.
        assert_eq!(bob.feed().len(), 0);
        assert_eq!(bob.middleware().store().latest_for(&alice.user_id()), 1);
    }
}
