//! The on-device database (paper §V: "saves the action to the local
//! database on the mobile device" before any dissemination).

use serde::{Deserialize, Serialize};
use sos_core::message::MessageId;
use sos_crypto::UserId;
use sos_sim::SimTime;
use std::collections::BTreeMap;

/// A post as stored on the receiving device, with the delivery metadata
/// the evaluation measures.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedPost {
    /// The message id (author + number).
    pub id: MessageId,
    /// Post body.
    pub text: String,
    /// When the author created it.
    pub created_at: SimTime,
    /// When this device received it (equals `created_at` for own posts).
    pub received_at: SimTime,
    /// D2D hops the delivered copy travelled (0 for own posts).
    pub hops: u32,
}

impl ReceivedPost {
    /// The delivery delay experienced by this device.
    pub fn delay(&self) -> sos_sim::SimDuration {
        self.received_at - self.created_at
    }
}

/// A queued action awaiting cloud synchronization (§V: actions sync
/// "when the Internet becomes available").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PendingAction {
    /// Follow `user`.
    Follow(UserId),
    /// Unfollow `user`.
    Unfollow(UserId),
}

/// A decrypted direct message in the inbox.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectMessage {
    /// The sender.
    pub from: UserId,
    /// Decrypted text.
    pub text: String,
    /// When the sender created it.
    pub created_at: SimTime,
    /// When this device received and decrypted it.
    pub received_at: SimTime,
}

/// The local database: received posts, the direct-message inbox, and
/// the outbound action queue.
#[derive(Clone, Debug, Default)]
pub struct LocalDb {
    posts: BTreeMap<MessageId, ReceivedPost>,
    inbox: Vec<DirectMessage>,
    pending_actions: Vec<PendingAction>,
}

impl LocalDb {
    /// Creates an empty database.
    pub fn new() -> LocalDb {
        LocalDb::default()
    }

    /// Inserts a post if absent; returns whether it was new.
    pub fn insert_post(&mut self, post: ReceivedPost) -> bool {
        if self.posts.contains_key(&post.id) {
            return false;
        }
        self.posts.insert(post.id, post);
        true
    }

    /// True if this post has been stored.
    pub fn has_post(&self, id: &MessageId) -> bool {
        self.posts.contains_key(id)
    }

    /// All posts by `author`, ascending by number.
    pub fn posts_by(&self, author: &UserId) -> Vec<&ReceivedPost> {
        self.posts
            .range(
                MessageId {
                    author: *author,
                    number: 0,
                }..=MessageId {
                    author: *author,
                    number: u64::MAX,
                },
            )
            .map(|(_, p)| p)
            .collect()
    }

    /// All stored posts.
    pub fn all_posts(&self) -> impl Iterator<Item = &ReceivedPost> {
        self.posts.values()
    }

    /// Number of stored posts.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }

    /// Appends a decrypted direct message to the inbox.
    pub fn push_direct(&mut self, dm: DirectMessage) {
        self.inbox.push(dm);
    }

    /// The direct-message inbox, oldest first.
    pub fn inbox(&self) -> &[DirectMessage] {
        &self.inbox
    }

    /// Queues an action for the next cloud sync.
    pub fn queue_action(&mut self, action: PendingAction) {
        self.pending_actions.push(action);
    }

    /// Takes all pending actions (called when the device goes online).
    pub fn drain_actions(&mut self) -> Vec<PendingAction> {
        std::mem::take(&mut self.pending_actions)
    }

    /// Number of unsynced actions.
    pub fn pending_action_count(&self) -> usize {
        self.pending_actions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(s: &str) -> UserId {
        UserId::from_str_padded(s)
    }

    fn post(author: &str, number: u64, created_s: u64, received_s: u64) -> ReceivedPost {
        ReceivedPost {
            id: MessageId {
                author: uid(author),
                number,
            },
            text: format!("{author}#{number}"),
            created_at: SimTime::from_secs(created_s),
            received_at: SimTime::from_secs(received_s),
            hops: 1,
        }
    }

    #[test]
    fn insert_and_dedup() {
        let mut db = LocalDb::new();
        assert!(db.insert_post(post("alice", 1, 0, 10)));
        assert!(!db.insert_post(post("alice", 1, 0, 99)), "duplicate");
        assert_eq!(db.post_count(), 1);
    }

    #[test]
    fn posts_by_author_is_scoped_and_ordered() {
        let mut db = LocalDb::new();
        db.insert_post(post("bob", 2, 0, 1));
        db.insert_post(post("alice", 2, 0, 1));
        db.insert_post(post("alice", 1, 0, 1));
        let got: Vec<u64> = db
            .posts_by(&uid("alice"))
            .iter()
            .map(|p| p.id.number)
            .collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn delay_computation() {
        let p = post("alice", 1, 100, 4000);
        assert_eq!(p.delay().as_secs(), 3900);
    }

    #[test]
    fn action_queue_drains() {
        let mut db = LocalDb::new();
        db.queue_action(PendingAction::Follow(uid("bob")));
        db.queue_action(PendingAction::Unfollow(uid("carol")));
        assert_eq!(db.pending_action_count(), 2);
        let drained = db.drain_actions();
        assert_eq!(drained.len(), 2);
        assert_eq!(db.pending_action_count(), 0);
    }
}
