//! The simulated cloud service and CA: the one-time infrastructure
//! requirement of Fig. 2a.
//!
//! "AlleyOop Social assumes that users will have Internet connectivity
//! during the initial download and installation of the mobile app. After
//! the one-time infrastructure requirement, Internet connectivity is no
//! longer needed for privacy, security, and message dissemination."
//!
//! The cloud: creates accounts, asks the CA to issue certificates after
//! cross-checking the claimed unique user-identifier (§IV's defence
//! against a malicious device providing someone else's identifier),
//! records follow actions synced by online devices, and serves CRL
//! updates. Devices may only call it while online.

use sos_crypto::ca::{CertificateAuthority, RevocationList};
use sos_crypto::cert::Certificate;
use sos_crypto::{UserId, VerifyingKey};
use std::collections::{BTreeMap, BTreeSet};

/// Errors from cloud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloudError {
    /// The user id is already registered to a different key.
    UserIdTaken,
    /// The claimed user id did not match the authenticated account
    /// (paper §IV: the CA compares the unique user-identifier).
    IdentityMismatch,
    /// The account does not exist.
    UnknownAccount,
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::UserIdTaken => f.write_str("user id already registered"),
            CloudError::IdentityMismatch => f.write_str("claimed identity mismatch"),
            CloudError::UnknownAccount => f.write_str("unknown account"),
        }
    }
}

impl std::error::Error for CloudError {}

/// A registered account as the cloud sees it.
#[derive(Clone, Debug)]
pub struct Account {
    /// The unique 10-byte user identifier.
    pub user_id: UserId,
    /// The display handle.
    pub handle: String,
    /// The account's registered verification key.
    pub verifying_key: VerifyingKey,
    /// Serial of the issued certificate.
    pub certificate_serial: u64,
}

/// The cloud backend: accounts, the CA, and the authoritative follow
/// graph (populated as devices sync their actions when online).
#[derive(Debug)]
pub struct Cloud {
    ca: CertificateAuthority,
    accounts: BTreeMap<UserId, Account>,
    follows: BTreeMap<UserId, BTreeSet<UserId>>,
}

impl Cloud {
    /// Creates the cloud with a fresh CA.
    pub fn new(ca_name: &str, ca_seed: [u8; 32]) -> Cloud {
        Cloud {
            ca: CertificateAuthority::new(ca_name, ca_seed, 0, u64::MAX),
            accounts: BTreeMap::new(),
            follows: BTreeMap::new(),
        }
    }

    /// The CA root certificate every device receives at signup.
    pub fn root_certificate(&self) -> &Certificate {
        self.ca.root_certificate()
    }

    /// Signup (Fig. 2a): registers the account, cross-checks the unique
    /// user identifier, and returns the issued certificate.
    ///
    /// # Errors
    ///
    /// [`CloudError::UserIdTaken`] if the id is registered to another
    /// key (a malicious device claiming someone else's identifier).
    pub fn sign_up(
        &mut self,
        user_id: UserId,
        handle: &str,
        verifying_key: VerifyingKey,
        agreement_public: [u8; 32],
        now_secs: u64,
    ) -> Result<Certificate, CloudError> {
        if let Some(existing) = self.accounts.get(&user_id) {
            if existing.verifying_key != verifying_key {
                return Err(CloudError::UserIdTaken);
            }
        }
        let cert = self
            .ca
            .issue(user_id, handle, verifying_key, agreement_public, now_secs);
        self.accounts.insert(
            user_id,
            Account {
                user_id,
                handle: handle.to_string(),
                verifying_key,
                certificate_serial: cert.serial,
            },
        );
        Ok(cert)
    }

    /// Records a follow action synced from an online device.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownAccount`] if either side is not registered.
    pub fn record_follow(&mut self, follower: UserId, followee: UserId) -> Result<(), CloudError> {
        if !self.accounts.contains_key(&follower) || !self.accounts.contains_key(&followee) {
            return Err(CloudError::UnknownAccount);
        }
        self.follows.entry(follower).or_default().insert(followee);
        Ok(())
    }

    /// Records an unfollow action.
    pub fn record_unfollow(&mut self, follower: UserId, followee: UserId) {
        if let Some(set) = self.follows.get_mut(&follower) {
            set.remove(&followee);
        }
    }

    /// Who `user` follows, per the cloud's (eventually-consistent) view.
    pub fn follows_of(&self, user: &UserId) -> BTreeSet<UserId> {
        self.follows.get(user).cloned().unwrap_or_default()
    }

    /// All registered accounts.
    pub fn accounts(&self) -> impl Iterator<Item = &Account> {
        self.accounts.values()
    }

    /// Revokes a user's certificate (requires infrastructure, §IV).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnknownAccount`] for unregistered users.
    pub fn revoke_user(&mut self, user: &UserId) -> Result<(), CloudError> {
        let account = self.accounts.get(user).ok_or(CloudError::UnknownAccount)?;
        self.ca.revoke(account.certificate_serial);
        Ok(())
    }

    /// The current signed revocation list, served to online devices.
    pub fn revocation_list(&self, now_secs: u64) -> RevocationList {
        self.ca.revocation_list(now_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_crypto::ed25519::SigningKey;
    use sos_crypto::x25519::AgreementKey;

    fn keys(seed: u8) -> (SigningKey, AgreementKey) {
        (
            SigningKey::from_seed([seed; 32]),
            AgreementKey::from_secret([seed.wrapping_add(1); 32]),
        )
    }

    #[test]
    fn signup_issues_valid_certificate() {
        let mut cloud = Cloud::new("AlleyOop CA", [5u8; 32]);
        let (sk, ak) = keys(1);
        let uid = UserId::from_str_padded("alice");
        let cert = cloud
            .sign_up(uid, "Alice", sk.verifying_key(), *ak.public(), 100)
            .unwrap();
        assert_eq!(cert.subject, uid);
        let validator = sos_crypto::Validator::new(cloud.root_certificate().clone());
        assert!(validator.validate(&cert, 200).is_ok());
    }

    #[test]
    fn identity_theft_blocked() {
        let mut cloud = Cloud::new("AlleyOop CA", [5u8; 32]);
        let (sk1, ak1) = keys(1);
        let (sk2, ak2) = keys(2);
        let uid = UserId::from_str_padded("alice");
        cloud
            .sign_up(uid, "Alice", sk1.verifying_key(), *ak1.public(), 0)
            .unwrap();
        // Mallory claims Alice's user id with her own key.
        assert_eq!(
            cloud
                .sign_up(uid, "Alice?", sk2.verifying_key(), *ak2.public(), 0)
                .unwrap_err(),
            CloudError::UserIdTaken
        );
    }

    #[test]
    fn re_signup_with_same_key_reissues() {
        let mut cloud = Cloud::new("AlleyOop CA", [5u8; 32]);
        let (sk, ak) = keys(1);
        let uid = UserId::from_str_padded("alice");
        let c1 = cloud
            .sign_up(uid, "Alice", sk.verifying_key(), *ak.public(), 0)
            .unwrap();
        let c2 = cloud
            .sign_up(uid, "Alice", sk.verifying_key(), *ak.public(), 50)
            .unwrap();
        assert_ne!(c1.serial, c2.serial, "reissue gets a fresh serial");
    }

    #[test]
    fn follow_graph_sync() {
        let mut cloud = Cloud::new("AlleyOop CA", [5u8; 32]);
        let (sk1, ak1) = keys(1);
        let (sk2, ak2) = keys(2);
        let alice = UserId::from_str_padded("alice");
        let bob = UserId::from_str_padded("bob");
        cloud
            .sign_up(alice, "Alice", sk1.verifying_key(), *ak1.public(), 0)
            .unwrap();
        cloud
            .sign_up(bob, "Bob", sk2.verifying_key(), *ak2.public(), 0)
            .unwrap();
        cloud.record_follow(bob, alice).unwrap();
        assert!(cloud.follows_of(&bob).contains(&alice));
        cloud.record_unfollow(bob, alice);
        assert!(cloud.follows_of(&bob).is_empty());
    }

    #[test]
    fn revocation_round_trip() {
        let mut cloud = Cloud::new("AlleyOop CA", [5u8; 32]);
        let (sk, ak) = keys(1);
        let uid = UserId::from_str_padded("alice");
        let cert = cloud
            .sign_up(uid, "Alice", sk.verifying_key(), *ak.public(), 0)
            .unwrap();
        cloud.revoke_user(&uid).unwrap();
        let crl = cloud.revocation_list(10);
        assert!(crl.serials.contains(&cert.serial));
        let mut validator = sos_crypto::Validator::new(cloud.root_certificate().clone());
        assert!(validator.install_crl(crl));
        assert_eq!(
            validator.validate(&cert, 10).unwrap_err(),
            sos_crypto::CertError::Revoked
        );
    }
}
