//! Error types for the simulation substrate.
//!
//! The substrate historically panicked on malformed inputs; that was
//! acceptable while every trajectory was program-generated, but trace
//! ingestion (`sos-trace`) feeds *external* data into these types, and
//! a malformed line in an imported contact trace must surface as an
//! error, never abort the process.

use std::error::Error;
use std::fmt;

/// Errors raised by simulation-substrate constructors and ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A trajectory needs at least one waypoint.
    EmptyTrajectory,
    /// Waypoint timestamps must be non-decreasing; `index` is the first
    /// waypoint that moves backwards in time.
    UnorderedWaypoints {
        /// Index of the offending waypoint.
        index: usize,
    },
    /// A movement speed must be strictly positive and finite.
    NonPositiveSpeed,
    /// An event was scheduled before the queue's current clock —
    /// scheduling into the past indicates a logic error in the caller,
    /// but it must surface as an error, not abort the process.
    SchedulePast {
        /// The requested (past) event time.
        at: crate::time::SimTime,
        /// The queue clock when the schedule was attempted.
        now: crate::time::SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyTrajectory => f.write_str("trajectory needs at least one waypoint"),
            SimError::UnorderedWaypoints { index } => {
                write!(f, "waypoint {index} moves backwards in time")
            }
            SimError::NonPositiveSpeed => f.write_str("speed must be positive and finite"),
            SimError::SchedulePast { at, now } => {
                write!(
                    f,
                    "cannot schedule into the past (at {} ms, queue is at {} ms)",
                    at.as_millis(),
                    now.as_millis()
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::EmptyTrajectory.to_string().contains("waypoint"));
        assert!(SimError::UnorderedWaypoints { index: 3 }
            .to_string()
            .contains('3'));
        assert!(SimError::NonPositiveSpeed.to_string().contains("positive"));
        let err = SimError::SchedulePast {
            at: crate::time::SimTime::from_secs(1),
            now: crate::time::SimTime::from_secs(5),
        };
        assert!(err.to_string().contains("past"));
        assert!(err.to_string().contains("1000"));
    }
}
