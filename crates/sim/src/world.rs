//! Contact detection: turning trajectories into the pairwise
//! contact-up / contact-down event stream that drives peer discovery.

use crate::geo::Point;
use crate::mobility::trace::Trajectory;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Whether a contact came up or went down.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContactPhase {
    /// The pair moved within communication range.
    Up,
    /// The pair moved out of communication range.
    Down,
}

/// A pairwise contact transition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContactEvent {
    /// When the transition was detected (sampled time).
    pub time: SimTime,
    /// Lower node index of the pair.
    pub a: usize,
    /// Higher node index of the pair.
    pub b: usize,
    /// Up or down.
    pub phase: ContactPhase,
    /// Distance at detection time, metres.
    pub distance_m: f64,
}

/// An interval during which a pair was continuously in range.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContactInterval {
    /// Lower node index.
    pub a: usize,
    /// Higher node index.
    pub b: usize,
    /// Start of the contact.
    pub start: SimTime,
    /// End of the contact (or the simulation end for open contacts).
    pub end: SimTime,
}

impl ContactInterval {
    /// Contact duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Collapses a time-ordered contact-event stream into closed intervals;
/// contacts still open at `end` are closed there. Output is sorted by
/// `(start, a, b)`.
pub fn collapse_intervals(events: &[ContactEvent], end: SimTime) -> Vec<ContactInterval> {
    let mut open: std::collections::HashMap<(usize, usize), SimTime> =
        std::collections::HashMap::new();
    let mut intervals = Vec::new();
    for ev in events {
        match ev.phase {
            ContactPhase::Up => {
                open.insert((ev.a, ev.b), ev.time);
            }
            ContactPhase::Down => {
                if let Some(s) = open.remove(&(ev.a, ev.b)) {
                    intervals.push(ContactInterval {
                        a: ev.a,
                        b: ev.b,
                        start: s,
                        end: ev.time,
                    });
                }
            }
        }
    }
    for ((a, b), s) in open {
        intervals.push(ContactInterval {
            a,
            b,
            start: s,
            end,
        });
    }
    intervals.sort_by_key(|iv| (iv.start, iv.a, iv.b));
    intervals
}

/// Anything that can answer "who is where, and when are pairs in
/// range" — the interface between mobility substrates and the
/// experiment driver.
///
/// Two implementations exist: [`World`] (the original all-pairs
/// tick scan, exact but O(n²) per tick) and `sos-engine`'s
/// grid-indexed event-driven kernel (same contact semantics at tick
/// resolution, near-linear in practice). The driver and every
/// scenario are generic over this trait, so substrates are
/// interchangeable.
pub trait ContactSource {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Communication range in metres.
    fn range_m(&self) -> f64;

    /// Position of `node` at `t`.
    fn position(&self, node: usize, t: SimTime) -> Point;

    /// Distance between two nodes at `t`.
    fn distance(&self, a: usize, b: usize, t: SimTime) -> f64 {
        self.position(a, t).distance(&self.position(b, t))
    }

    /// True if `a` and `b` are within range at `t`.
    fn in_range(&self, a: usize, b: usize, t: SimTime) -> bool {
        self.distance(a, b, t) <= self.range_m()
    }

    /// Every contact transition in `[start, end]`, in time order.
    fn contact_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent>;

    /// Closed contact intervals over `[start, end]`.
    fn contact_intervals(&self, start: SimTime, end: SimTime) -> Vec<ContactInterval> {
        collapse_intervals(&self.contact_events(start, end), end)
    }
}

/// The simulated world: node trajectories plus a communication range.
///
/// Contact detection samples all trajectories on a fixed tick and applies
/// a range threshold; this mirrors MPC's periodic Bonjour/BLE discovery
/// scans rather than instantaneous geometric intersection.
#[derive(Clone, Debug)]
pub struct World {
    trajectories: Vec<Trajectory>,
    range_m: f64,
    tick: SimDuration,
}

impl World {
    /// Creates a world.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories` is empty, `range_m` is not positive, or
    /// `tick` is zero.
    pub fn new(trajectories: Vec<Trajectory>, range_m: f64, tick: SimDuration) -> World {
        assert!(!trajectories.is_empty(), "world needs nodes");
        assert!(range_m > 0.0, "range must be positive");
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        World {
            trajectories,
            range_m,
            tick,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.trajectories.len()
    }

    /// Communication range in metres.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Discovery tick.
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// Position of `node` at `t`.
    pub fn position(&self, node: usize, t: SimTime) -> Point {
        self.trajectories[node].position_at(t)
    }

    /// The trajectory of `node`.
    pub fn trajectory(&self, node: usize) -> &Trajectory {
        &self.trajectories[node]
    }

    /// All trajectories, in node order.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Consumes the world into its trajectories (for handing them to a
    /// different [`ContactSource`] implementation).
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.trajectories
    }

    /// Distance between two nodes at `t`.
    pub fn distance(&self, a: usize, b: usize, t: SimTime) -> f64 {
        self.position(a, t).distance(&self.position(b, t))
    }

    /// True if `a` and `b` are within range at `t`.
    pub fn in_range(&self, a: usize, b: usize, t: SimTime) -> bool {
        self.distance(a, b, t) <= self.range_m
    }

    /// Scans `[start, end]` on the discovery tick and emits every contact
    /// transition, in time order.
    #[allow(clippy::needless_range_loop)] // triangular a<b pair walk
    pub fn contact_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent> {
        let n = self.node_count();
        let mut up = vec![vec![false; n]; n];
        let mut events = Vec::new();
        let mut t = start;
        while t <= end {
            for a in 0..n {
                let pa = self.position(a, t);
                for b in (a + 1)..n {
                    let d = pa.distance(&self.position(b, t));
                    let now_up = d <= self.range_m;
                    if now_up != up[a][b] {
                        up[a][b] = now_up;
                        events.push(ContactEvent {
                            time: t,
                            a,
                            b,
                            phase: if now_up {
                                ContactPhase::Up
                            } else {
                                ContactPhase::Down
                            },
                            distance_m: d,
                        });
                    }
                }
            }
            t += self.tick;
        }
        events
    }

    /// Collapses the event stream into closed contact intervals.
    /// Contacts still open at `end` are closed there.
    pub fn contact_intervals(&self, start: SimTime, end: SimTime) -> Vec<ContactInterval> {
        collapse_intervals(&self.contact_events(start, end), end)
    }
}

impl ContactSource for World {
    fn node_count(&self) -> usize {
        World::node_count(self)
    }

    fn range_m(&self) -> f64 {
        World::range_m(self)
    }

    fn position(&self, node: usize, t: SimTime) -> Point {
        World::position(self, node, t)
    }

    fn contact_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent> {
        World::contact_events(self, start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two nodes approaching, meeting, and separating.
    fn crossing_world() -> World {
        let a = Trajectory::new(vec![
            (SimTime::ZERO, Point::new(0.0, 0.0)),
            (SimTime::from_secs(1000), Point::new(1000.0, 0.0)),
        ])
        .unwrap();
        let b = Trajectory::new(vec![
            (SimTime::ZERO, Point::new(1000.0, 0.0)),
            (SimTime::from_secs(1000), Point::new(0.0, 0.0)),
        ])
        .unwrap();
        World::new(vec![a, b], 60.0, SimDuration::from_secs(10))
    }

    #[test]
    fn crossing_nodes_meet_once() {
        let w = crossing_world();
        let events = w.contact_events(SimTime::ZERO, SimTime::from_secs(1000));
        assert_eq!(events.len(), 2, "one up and one down: {events:?}");
        assert_eq!(events[0].phase, ContactPhase::Up);
        assert_eq!(events[1].phase, ContactPhase::Down);
        // They meet at t=500s in the middle; window is ±30 s when closing
        // at 100 m/s relative speed with a 60 m range.
        assert!(events[0].time > SimTime::from_secs(400));
        assert!(events[1].time < SimTime::from_secs(600));
    }

    #[test]
    fn intervals_match_events() {
        let w = crossing_world();
        let ivs = w.contact_intervals(SimTime::ZERO, SimTime::from_secs(1000));
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].duration() > SimDuration::from_secs(5));
        assert_eq!((ivs[0].a, ivs[0].b), (0, 1));
    }

    #[test]
    fn stationary_pair_always_in_contact() {
        let w = World::new(
            vec![
                Trajectory::stationary(Point::new(0.0, 0.0)),
                Trajectory::stationary(Point::new(30.0, 0.0)),
            ],
            60.0,
            SimDuration::from_secs(30),
        );
        let ivs = w.contact_intervals(SimTime::ZERO, SimTime::from_hours(1));
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].start, SimTime::ZERO);
        assert_eq!(ivs[0].end, SimTime::from_hours(1));
    }

    #[test]
    fn out_of_range_pair_never_in_contact() {
        let w = World::new(
            vec![
                Trajectory::stationary(Point::new(0.0, 0.0)),
                Trajectory::stationary(Point::new(500.0, 0.0)),
            ],
            60.0,
            SimDuration::from_secs(30),
        );
        assert!(w
            .contact_events(SimTime::ZERO, SimTime::from_hours(1))
            .is_empty());
    }

    #[test]
    fn three_nodes_pairwise() {
        let w = World::new(
            vec![
                Trajectory::stationary(Point::new(0.0, 0.0)),
                Trajectory::stationary(Point::new(30.0, 0.0)),
                Trajectory::stationary(Point::new(55.0, 0.0)),
            ],
            60.0,
            SimDuration::from_secs(30),
        );
        let ivs = w.contact_intervals(SimTime::ZERO, SimTime::from_secs(60));
        // 0-1 (30m), 1-2 (25m), 0-2 (55m) all within 60m.
        assert_eq!(ivs.len(), 3);
    }
}
