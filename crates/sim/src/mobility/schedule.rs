//! A daily-schedule mobility model for the field-study population.
//!
//! The paper's ten users were students who "typically interacted during
//! the school week" and were "stationary, for at least 5-8 hours a day due
//! to the human requirement to sleep" (§VI-B). Each node gets:
//!
//! * a **home** where it sleeps every night,
//! * a shared **campus** (a cluster of buildings) it attends on weekdays
//!   with some probability, moving between buildings through the day,
//! * occasional evening **social visits** to another node's home.
//!
//! Contacts therefore happen mostly on campus (same building → within
//! D2D range) and during visits, producing the heavy-tailed delivery
//! delays of Fig. 4c: a message posted while its subscriber skips campus
//! may wait days for the next co-location.

use crate::geo::{Bounds, Point};
use crate::mobility::trace::{Trajectory, TrajectoryBuilder};
use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// Configuration shared by all nodes of a [`DailySchedule`] population.
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    /// The simulation area.
    pub bounds: Bounds,
    /// Centre of the shared campus.
    pub campus_center: Point,
    /// Number of campus buildings, arranged on a grid.
    pub campus_buildings: usize,
    /// Spacing between adjacent buildings, metres. Nodes in the same
    /// building are within D2D range; nodes in different buildings are
    /// usually not.
    pub building_spacing: f64,
    /// Probability a node attends campus on a weekday.
    pub weekday_attendance: f64,
    /// Probability a node attends campus on a weekend day.
    pub weekend_attendance: f64,
    /// Probability of an evening social visit to a friend's home.
    pub social_visit_prob: f64,
    /// Minimum visit duration in minutes.
    pub visit_minutes_min: u64,
    /// Maximum visit duration in minutes.
    pub visit_minutes_max: u64,
    /// Mean arrival hour on campus (e.g. 9.0 for 9am).
    pub arrival_hour_mean: f64,
    /// Uniform jitter (± hours) applied to arrival time.
    pub arrival_jitter_hours: f64,
    /// Mean hours spent on campus per attended day.
    pub stay_hours_mean: f64,
    /// Uniform jitter (± hours) on the stay duration.
    pub stay_jitter_hours: f64,
    /// Travel speed between home/campus/visits (driving), m/s.
    pub travel_speed: f64,
    /// Walking speed within campus, m/s.
    pub walk_speed: f64,
    /// How often a node re-picks a building while on campus.
    pub building_dwell: SimDuration,
    /// Probability of choosing from the node's preferred-building list
    /// (when one is set) instead of uniformly; models friend groups
    /// clustering in the same places.
    pub preference_strength: f64,
    /// Number of simulated days.
    pub days: u64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            bounds: Bounds::gainesville(),
            campus_center: Point::new(5_500.0, 4_000.0),
            campus_buildings: 6,
            building_spacing: 250.0,
            weekday_attendance: 0.85,
            weekend_attendance: 0.25,
            social_visit_prob: 0.25,
            visit_minutes_min: 45,
            visit_minutes_max: 180,
            arrival_hour_mean: 9.5,
            arrival_jitter_hours: 1.5,
            stay_hours_mean: 6.0,
            stay_jitter_hours: 2.0,
            travel_speed: 10.0,
            walk_speed: 1.4,
            building_dwell: SimDuration::from_mins(75),
            preference_strength: 0.0,
            days: 7,
        }
    }
}

/// Generates trajectories for a population following daily schedules.
#[derive(Clone, Debug)]
pub struct DailySchedule {
    config: ScheduleConfig,
    homes: Vec<Point>,
    buildings: Vec<Point>,
    /// Per-node preferred campus buildings (empty = no preference).
    preferred: Vec<Vec<usize>>,
    /// Per-node evening-visit targets (empty = anyone).
    friends: Vec<Vec<usize>>,
}

impl DailySchedule {
    /// Creates the generator, sampling each node's home uniformly in the
    /// bounds and laying campus buildings out on a grid.
    pub fn new<R: Rng>(config: ScheduleConfig, node_count: usize, rng: &mut R) -> DailySchedule {
        assert!(node_count > 0, "need at least one node");
        assert!(config.campus_buildings > 0, "need at least one building");
        let homes: Vec<Point> = (0..node_count).map(|_| config.bounds.sample(rng)).collect();
        let cols = (config.campus_buildings as f64).sqrt().ceil() as usize;
        let buildings: Vec<Point> = (0..config.campus_buildings)
            .map(|i| {
                let row = i / cols;
                let col = i % cols;
                config.bounds.clamp(Point::new(
                    config.campus_center.x
                        + (col as f64 - cols as f64 / 2.0) * config.building_spacing,
                    config.campus_center.y + (row as f64) * config.building_spacing,
                ))
            })
            .collect();
        DailySchedule {
            config,
            homes,
            buildings,
            preferred: vec![Vec::new(); node_count],
            friends: vec![Vec::new(); node_count],
        }
    }

    /// Home location of `node`.
    pub fn home(&self, node: usize) -> Point {
        self.homes[node]
    }

    /// Campus building locations.
    pub fn buildings(&self) -> &[Point] {
        &self.buildings
    }

    /// Sets the preferred campus buildings per node; with probability
    /// [`ScheduleConfig::preference_strength`] a node picks its next
    /// building from this list. Friend groups that share preferences
    /// co-locate far more often.
    ///
    /// # Panics
    ///
    /// Panics if the outer length differs from the node count or any
    /// index is out of range.
    pub fn set_building_preferences(&mut self, preferred: Vec<Vec<usize>>) {
        assert_eq!(preferred.len(), self.homes.len(), "one list per node");
        for list in &preferred {
            for &b in list {
                assert!(b < self.buildings.len(), "building index out of range");
            }
        }
        self.preferred = preferred;
    }

    /// Sets the evening-visit targets per node (typically the node's
    /// friends); an empty list means anyone may be visited.
    ///
    /// # Panics
    ///
    /// Panics if the outer length differs from the node count or any
    /// index is out of range.
    pub fn set_friends(&mut self, friends: Vec<Vec<usize>>) {
        assert_eq!(friends.len(), self.homes.len(), "one list per node");
        for (node, list) in friends.iter().enumerate() {
            for &f in list {
                assert!(f < self.homes.len() && f != node, "bad friend index");
            }
        }
        self.friends = friends;
    }

    fn pick_building<R: Rng>(&self, node: usize, rng: &mut R) -> Point {
        let preferred = &self.preferred[node];
        if !preferred.is_empty() && rng.gen_bool(self.config.preference_strength.clamp(0.0, 1.0)) {
            self.buildings[preferred[rng.gen_range(0..preferred.len())]]
        } else {
            self.buildings[rng.gen_range(0..self.buildings.len())]
        }
    }

    fn pick_visit_target<R: Rng>(&self, node: usize, rng: &mut R) -> usize {
        let friends = &self.friends[node];
        if !friends.is_empty() {
            friends[rng.gen_range(0..friends.len())]
        } else {
            let mut target = rng.gen_range(0..self.homes.len());
            if target == node {
                target = (target + 1) % self.homes.len();
            }
            target
        }
    }

    /// Generates the full multi-day trajectory for one node.
    ///
    /// `rng` must be a per-node stream (fork the scenario RNG per node)
    /// so trajectories are independent yet reproducible.
    pub fn generate<R: Rng>(&self, node: usize, rng: &mut R) -> Trajectory {
        let cfg = &self.config;
        let home = self.homes[node];
        let mut b = TrajectoryBuilder::new(SimTime::ZERO, home);

        for day in 0..cfg.days {
            let day_start = SimTime::from_hours(day * 24);
            // Weekdays are day % 7 in 0..5 (the epoch is a Monday).
            let weekday = day % 7 < 5;
            let attendance = if weekday {
                cfg.weekday_attendance
            } else {
                cfg.weekend_attendance
            };
            if rng.gen_bool(attendance.clamp(0.0, 1.0)) {
                // Campus day: arrive in the morning, hop between
                // buildings, go home in the afternoon.
                let arrive_h = cfg.arrival_hour_mean
                    + rng.gen_range(-cfg.arrival_jitter_hours..=cfg.arrival_jitter_hours);
                let stay_h = (cfg.stay_hours_mean
                    + rng.gen_range(-cfg.stay_jitter_hours..=cfg.stay_jitter_hours))
                .max(1.0);
                let arrive = day_start + SimDuration::from_millis((arrive_h * 3.6e6) as u64);
                let leave = arrive + SimDuration::from_millis((stay_h * 3.6e6) as u64);

                let first_building = self.pick_building(node, rng);
                // Leave home so that we arrive at `arrive`.
                let travel = SimDuration::from_millis(
                    (b.position().distance(&first_building) / cfg.travel_speed * 1000.0) as u64,
                );
                let depart =
                    SimTime::from_millis(arrive.as_millis().saturating_sub(travel.as_millis()));
                b.wait_until(depart.max(b.now()));
                b.travel_to(first_building, cfg.travel_speed)
                    .expect("schedule speeds are positive");
                // Hop between buildings until it is time to leave.
                while b.now() + cfg.building_dwell < leave {
                    let dwell_end = b.now() + cfg.building_dwell;
                    b.wait_until(dwell_end);
                    let next = self.pick_building(node, rng);
                    if next.distance(&b.position()) > 1.0 {
                        b.travel_to(next, cfg.walk_speed)
                            .expect("schedule speeds are positive");
                    }
                }
                b.wait_until(leave);
                b.travel_to(home, cfg.travel_speed)
                    .expect("schedule speeds are positive");
            }
            // Evening social visit (campus or not): the pairwise contact
            // channel that dominates weekend dissemination.
            if self.homes.len() > 1 && rng.gen_bool(cfg.social_visit_prob.clamp(0.0, 1.0)) {
                let friend = self.pick_visit_target(node, rng);
                let depart_h = rng.gen_range(17.0..19.5f64);
                let depart = day_start + SimDuration::from_millis((depart_h * 3.6e6) as u64);
                b.wait_until(depart.max(b.now()));
                b.travel_to(self.homes[friend], cfg.travel_speed)
                    .expect("schedule speeds are positive");
                let visit_mins = rng.gen_range(
                    cfg.visit_minutes_min..=cfg.visit_minutes_max.max(cfg.visit_minutes_min),
                );
                let visit_end = b.now() + SimDuration::from_mins(visit_mins);
                b.wait_until(visit_end);
                b.travel_to(home, cfg.travel_speed)
                    .expect("schedule speeds are positive");
            }
            // Sleep at home until next morning regardless.
            let next_day = SimTime::from_hours((day + 1) * 24);
            b.wait_until(next_day.max(b.now()));
        }
        b.build()
    }

    /// Generates trajectories for all nodes from a base seed, forking a
    /// deterministic per-node stream.
    pub fn generate_all(&self, base_seed: u64) -> Vec<Trajectory> {
        use rand::SeedableRng;
        (0..self.homes.len())
            .map(|node| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    base_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(node as u64 + 1)),
                );
                self.generate(node, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(nodes: usize, seed: u64) -> (DailySchedule, Vec<Trajectory>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sched = DailySchedule::new(ScheduleConfig::default(), nodes, &mut rng);
        let trs = sched.generate_all(seed);
        (sched, trs)
    }

    #[test]
    fn nodes_sleep_at_home() {
        let (sched, trs) = make(5, 3);
        for (node, tr) in trs.iter().enumerate() {
            // 3 AM every day: everyone is home.
            for day in 0..7 {
                let t = SimTime::from_hours(day * 24 + 3);
                let pos = tr.position_at(t);
                assert!(
                    pos.distance(&sched.home(node)) < 1.0,
                    "node {node} away from home at {t}"
                );
            }
        }
    }

    #[test]
    fn nodes_visit_campus_on_weekdays() {
        let (sched, trs) = make(8, 4);
        let campus = sched.buildings()[0];
        let mut campus_visits = 0;
        for tr in &trs {
            for day in 0..5u64 {
                // Check noon position.
                let t = SimTime::from_hours(day * 24 + 12);
                let pos = tr.position_at(t);
                if pos.distance(&campus) < 2_000.0 {
                    campus_visits += 1;
                }
            }
        }
        assert!(
            campus_visits > 10,
            "expected regular campus attendance, saw {campus_visits}"
        );
    }

    #[test]
    fn trajectories_stay_in_bounds() {
        let (sched, trs) = make(6, 9);
        let bounds = ScheduleConfig::default().bounds;
        let _ = sched;
        for tr in &trs {
            for hour in 0..(7 * 24) {
                let p = tr.position_at(SimTime::from_hours(hour));
                assert!(bounds.contains(&p));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (_, t1) = make(4, 42);
        let (_, t2) = make(4, 42);
        assert_eq!(t1, t2);
    }

    #[test]
    fn covers_full_duration() {
        let (_, trs) = make(3, 1);
        for tr in &trs {
            assert!(tr.end_time() >= SimTime::from_hours(7 * 24));
        }
    }
}
