//! A districts + transit metropolis: city-scale daily mobility.
//!
//! [`DailySchedule`](crate::mobility::schedule::DailySchedule) models
//! the paper's ten students around one campus; a million-node city
//! needs structure that keeps contact density *local* while the map
//! grows with the population. The metropolis is a grid of **districts**
//! (~1–2 k residents each), every district holding housing **blocks**,
//! **workplaces**, and one **transit station** at its centre:
//!
//! * nodes sleep in their home block (block-mates are within D2D range),
//! * on work days they commute to a workplace — walking to the station
//!   and riding an L-shaped transit line when the workplace is in
//!   another district, driving directly otherwise,
//! * evenings bring optional leisure visits to another block of the
//!   home district, and everyone is home overnight.
//!
//! Contacts therefore cluster in blocks, workplaces, stations, and
//! shared transit corridors — the locality that makes scheme behaviour
//! diverge at scale (Schurgot et al.; Moreira & Mendes), and that the
//! sharded contact kernel exploits spatially.
//!
//! Area scales with the population (fixed residents per district), so
//! density — and per-node contact rate — stays roughly constant from
//! 10 k to 1 M nodes.

use crate::geo::{Bounds, Point};
use crate::mobility::soa::TrajectorySet;
use crate::mobility::trace::{Trajectory, TrajectoryBuilder};
use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// Configuration for a [`Metropolis`] population.
#[derive(Clone, Debug)]
pub struct MetropolisConfig {
    /// District grid columns.
    pub districts_x: usize,
    /// District grid rows.
    pub districts_y: usize,
    /// Side of one square district, metres.
    pub district_size: f64,
    /// Housing blocks per district (laid out on an inner grid).
    pub blocks_per_district: usize,
    /// Workplaces per district (laid out on an inner grid, offset from
    /// the housing blocks).
    pub workplaces_per_district: usize,
    /// Scatter radius of homes around their block centre / desks around
    /// their workplace, metres. Keep below the radio range so
    /// block-mates and colleagues are in contact.
    pub scatter_m: f64,
    /// Probability a node works in its home district (otherwise the
    /// work district is sampled uniformly city-wide).
    pub work_local_prob: f64,
    /// Probability of commuting on a weekday.
    pub weekday_commute: f64,
    /// Probability of commuting on a weekend day.
    pub weekend_commute: f64,
    /// Mean workplace-arrival hour (e.g. 8.5 for 08:30).
    pub arrival_hour_mean: f64,
    /// Uniform jitter (± hours) applied to arrival time.
    pub arrival_jitter_hours: f64,
    /// Mean hours at work per commuting day.
    pub work_hours_mean: f64,
    /// Uniform jitter (± hours) on the work stay.
    pub work_jitter_hours: f64,
    /// Probability of an evening leisure visit to another block of the
    /// home district.
    pub leisure_prob: f64,
    /// Minimum leisure visit duration, minutes.
    pub leisure_minutes_min: u64,
    /// Maximum leisure visit duration, minutes.
    pub leisure_minutes_max: u64,
    /// Walking speed (home ↔ station, station ↔ desk), m/s.
    pub walk_speed: f64,
    /// Driving speed (direct commutes, leisure), m/s.
    pub drive_speed: f64,
    /// Transit speed between stations, m/s.
    pub transit_speed: f64,
    /// Number of simulated days.
    pub days: u64,
}

impl Default for MetropolisConfig {
    fn default() -> Self {
        MetropolisConfig {
            districts_x: 3,
            districts_y: 3,
            district_size: 1_500.0,
            blocks_per_district: 120,
            workplaces_per_district: 40,
            scatter_m: 25.0,
            work_local_prob: 0.4,
            weekday_commute: 0.8,
            weekend_commute: 0.15,
            arrival_hour_mean: 8.5,
            arrival_jitter_hours: 1.0,
            work_hours_mean: 8.0,
            work_jitter_hours: 1.5,
            leisure_prob: 0.3,
            leisure_minutes_min: 45,
            leisure_minutes_max: 150,
            walk_speed: 1.4,
            drive_speed: 11.0,
            transit_speed: 15.0,
            days: 7,
        }
    }
}

impl MetropolisConfig {
    /// A config whose district grid scales with the population at
    /// ~1,500 residents per district, keeping contact density constant
    /// from 10 k to 1 M nodes.
    pub fn for_population(nodes: usize) -> MetropolisConfig {
        let districts = (nodes / 1_500).max(1);
        let cols = (districts as f64).sqrt().ceil() as usize;
        let rows = districts.div_ceil(cols);
        MetropolisConfig {
            districts_x: cols.max(1),
            districts_y: rows.max(1),
            ..MetropolisConfig::default()
        }
    }

    /// Number of districts in the grid.
    pub fn district_count(&self) -> usize {
        self.districts_x * self.districts_y
    }

    /// The city bounds implied by the district grid.
    pub fn bounds(&self) -> Bounds {
        Bounds::new(
            self.districts_x as f64 * self.district_size,
            self.districts_y as f64 * self.district_size,
        )
    }
}

/// Generates trajectories for a metropolis population.
///
/// Construction deterministically assigns every node a home block, a
/// work district, and a workplace from `(config, node_count, seed)`;
/// [`Metropolis::generate_all`] then forks a per-node RNG stream for
/// the day-to-day randomness, so the whole city is a pure function of
/// configuration and seed.
#[derive(Clone, Debug)]
pub struct Metropolis {
    config: MetropolisConfig,
    blocks: Vec<Point>,
    stations: Vec<Point>,
    homes: Vec<Point>,
    desks: Vec<Point>,
    home_district: Vec<u32>,
    work_district: Vec<u32>,
    members: Vec<Vec<u32>>,
}

impl Metropolis {
    /// Creates the city and assigns every node a home and a workplace.
    ///
    /// # Panics
    ///
    /// Panics on a zero node count, an empty district grid, or
    /// non-positive speeds — configuration bugs, not data errors.
    pub fn new<R: Rng>(config: MetropolisConfig, node_count: usize, rng: &mut R) -> Metropolis {
        assert!(node_count > 0, "need at least one node");
        let districts = config.district_count();
        assert!(districts > 0, "need at least one district");
        assert!(
            config.blocks_per_district > 0 && config.workplaces_per_district > 0,
            "districts need blocks and workplaces"
        );
        for speed in [config.walk_speed, config.drive_speed, config.transit_speed] {
            assert!(speed > 0.0 && speed.is_finite(), "speeds must be positive");
        }
        let bounds = config.bounds();

        // Inner grids: blocks in the district's north half, workplaces
        // in the south half, station at the centre.
        let mut blocks = Vec::with_capacity(districts * config.blocks_per_district);
        let mut workplaces = Vec::with_capacity(districts * config.workplaces_per_district);
        let mut stations = Vec::with_capacity(districts);
        for d in 0..districts {
            let col = d % config.districts_x;
            let row = d / config.districts_x;
            let x0 = col as f64 * config.district_size;
            let y0 = row as f64 * config.district_size;
            stations.push(Point::new(
                x0 + config.district_size / 2.0,
                y0 + config.district_size / 2.0,
            ));
            blocks.extend(inner_grid(
                config.blocks_per_district,
                x0,
                y0 + config.district_size * 0.55,
                config.district_size,
                config.district_size * 0.4,
            ));
            workplaces.extend(inner_grid(
                config.workplaces_per_district,
                x0,
                y0 + config.district_size * 0.05,
                config.district_size,
                config.district_size * 0.4,
            ));
        }

        let mut homes = Vec::with_capacity(node_count);
        let mut desks = Vec::with_capacity(node_count);
        let mut home_district = Vec::with_capacity(node_count);
        let mut work_district = Vec::with_capacity(node_count);
        let mut members = vec![Vec::new(); districts];
        for node in 0..node_count {
            let hd = rng.gen_range(0..districts);
            let block =
                hd * config.blocks_per_district + rng.gen_range(0..config.blocks_per_district);
            let wd = if rng.gen_bool(config.work_local_prob.clamp(0.0, 1.0)) {
                hd
            } else {
                rng.gen_range(0..districts)
            };
            let wp = wd * config.workplaces_per_district
                + rng.gen_range(0..config.workplaces_per_district);
            homes.push(bounds.clamp(scatter(blocks[block], config.scatter_m, rng)));
            desks.push(bounds.clamp(scatter(workplaces[wp], config.scatter_m, rng)));
            home_district.push(hd as u32);
            work_district.push(wd as u32);
            members[hd].push(node as u32);
        }

        Metropolis {
            config,
            blocks,
            stations,
            homes,
            desks,
            home_district,
            work_district,
            members,
        }
    }

    /// The configuration the city was built from.
    pub fn config(&self) -> &MetropolisConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.homes.len()
    }

    /// Number of districts.
    pub fn district_count(&self) -> usize {
        self.members.len()
    }

    /// Home district of `node`.
    pub fn home_district(&self, node: usize) -> usize {
        self.home_district[node] as usize
    }

    /// The nodes living in district `d` (ascending node order).
    pub fn district_members(&self, d: usize) -> &[u32] {
        &self.members[d]
    }

    /// Home position of `node`.
    pub fn home(&self, node: usize) -> Point {
        self.homes[node]
    }

    fn station_of(&self, district: usize) -> Point {
        self.stations[district]
    }

    /// The corner district where an L-shaped transit ride from `from`
    /// to `to` changes line: same row as `from`, same column as `to`.
    fn transit_corner(&self, from: usize, to: usize) -> usize {
        let row = from / self.config.districts_x;
        let col = to % self.config.districts_x;
        row * self.config.districts_x + col
    }

    /// Appends the home → desk commute (or its reverse) to the builder.
    fn commute(&self, b: &mut TrajectoryBuilder, node: usize, to_work: bool) {
        let cfg = &self.config;
        let (from_d, to_d, dest) = if to_work {
            (
                self.home_district[node] as usize,
                self.work_district[node] as usize,
                self.desks[node],
            )
        } else {
            (
                self.work_district[node] as usize,
                self.home_district[node] as usize,
                self.homes[node],
            )
        };
        if from_d == to_d {
            travel(b, dest, cfg.drive_speed);
            return;
        }
        travel(b, self.station_of(from_d), cfg.walk_speed);
        let corner = self.transit_corner(from_d, to_d);
        if corner != from_d && corner != to_d {
            travel(b, self.station_of(corner), cfg.transit_speed);
        }
        travel(b, self.station_of(to_d), cfg.transit_speed);
        travel(b, dest, cfg.walk_speed);
    }

    /// Travel time of the commute at the configured speeds, used to
    /// back-date the departure so arrival hits the sampled hour.
    fn commute_duration(&self, node: usize, to_work: bool) -> SimDuration {
        let cfg = &self.config;
        let (from_d, to_d, from, dest) = if to_work {
            (
                self.home_district[node] as usize,
                self.work_district[node] as usize,
                self.homes[node],
                self.desks[node],
            )
        } else {
            (
                self.work_district[node] as usize,
                self.home_district[node] as usize,
                self.desks[node],
                self.homes[node],
            )
        };
        let ms = if from_d == to_d {
            leg_ms(from, dest, cfg.drive_speed)
        } else {
            let s_from = self.station_of(from_d);
            let s_to = self.station_of(to_d);
            let corner = self.transit_corner(from_d, to_d);
            let mut total = leg_ms(from, s_from, cfg.walk_speed);
            let mut at = s_from;
            if corner != from_d && corner != to_d {
                total += leg_ms(at, self.station_of(corner), cfg.transit_speed);
                at = self.station_of(corner);
            }
            total += leg_ms(at, s_to, cfg.transit_speed);
            total + leg_ms(s_to, dest, cfg.walk_speed)
        };
        SimDuration::from_millis(ms)
    }

    /// Generates the full multi-day trajectory for one node.
    ///
    /// `rng` must be a per-node stream (fork the scenario RNG per node)
    /// so trajectories are independent yet reproducible.
    pub fn generate<R: Rng>(&self, node: usize, rng: &mut R) -> Trajectory {
        let cfg = &self.config;
        let home = self.homes[node];
        let mut b = TrajectoryBuilder::new(SimTime::ZERO, home);

        for day in 0..cfg.days {
            let day_start = SimTime::from_hours(day * 24);
            // The epoch is a Monday, as in the daily-schedule model.
            let weekday = day % 7 < 5;
            let commute_prob = if weekday {
                cfg.weekday_commute
            } else {
                cfg.weekend_commute
            };
            if rng.gen_bool(commute_prob.clamp(0.0, 1.0)) {
                let arrive_h = cfg.arrival_hour_mean
                    + rng.gen_range(-cfg.arrival_jitter_hours..=cfg.arrival_jitter_hours);
                let work_h = (cfg.work_hours_mean
                    + rng.gen_range(-cfg.work_jitter_hours..=cfg.work_jitter_hours))
                .max(1.0);
                let arrive = day_start + SimDuration::from_millis((arrive_h * 3.6e6) as u64);
                let travel_time = self.commute_duration(node, true);
                let depart = SimTime::from_millis(
                    arrive.as_millis().saturating_sub(travel_time.as_millis()),
                );
                b.wait_until(depart.max(b.now()));
                self.commute(&mut b, node, true);
                let leave = b.now() + SimDuration::from_millis((work_h * 3.6e6) as u64);
                b.wait_until(leave);
                self.commute(&mut b, node, false);
            }
            if rng.gen_bool(cfg.leisure_prob.clamp(0.0, 1.0)) {
                let hd = self.home_district[node] as usize;
                let block =
                    hd * cfg.blocks_per_district + rng.gen_range(0..cfg.blocks_per_district);
                let depart_h = rng.gen_range(18.0..20.0f64);
                let depart = day_start + SimDuration::from_millis((depart_h * 3.6e6) as u64);
                b.wait_until(depart.max(b.now()));
                travel(&mut b, self.blocks[block], cfg.drive_speed);
                let mins = rng.gen_range(
                    cfg.leisure_minutes_min..=cfg.leisure_minutes_max.max(cfg.leisure_minutes_min),
                );
                b.wait_until(b.now() + SimDuration::from_mins(mins));
                travel(&mut b, home, cfg.drive_speed);
            }
            // Sleep at home until the next morning.
            let next_day = SimTime::from_hours((day + 1) * 24);
            b.wait_until(next_day.max(b.now()));
        }
        b.build()
    }

    /// Generates the whole city into a [`TrajectorySet`], forking a
    /// deterministic per-node RNG stream from `base_seed` (the same
    /// forking scheme as `DailySchedule::generate_all`).
    pub fn generate_all(&self, base_seed: u64) -> TrajectorySet {
        use rand::SeedableRng;
        let mut set = TrajectorySet::new();
        for node in 0..self.node_count() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                base_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(node as u64 + 1)),
            );
            set.push_trajectory(&self.generate(node, &mut rng));
        }
        set
    }
}

/// Lays `count` points out on a grid inside a `width × height` box at
/// `(x0, y0)`, inset from the edges.
fn inner_grid(count: usize, x0: f64, y0: f64, width: f64, height: f64) -> Vec<Point> {
    let cols = (count as f64).sqrt().ceil() as usize;
    let rows = count.div_ceil(cols);
    (0..count)
        .map(|i| {
            let c = i % cols;
            let r = i / cols;
            Point::new(
                x0 + width * (c as f64 + 0.5) / cols as f64,
                y0 + height * (r as f64 + 0.5) / rows as f64,
            )
        })
        .collect()
}

fn scatter<R: Rng>(center: Point, radius: f64, rng: &mut R) -> Point {
    Point::new(
        center.x + rng.gen_range(-radius..=radius),
        center.y + rng.gen_range(-radius..=radius),
    )
}

fn leg_ms(from: Point, to: Point, speed: f64) -> u64 {
    (from.distance(&to) / speed * 1000.0).round() as u64
}

/// Travels to `dest` unless already (essentially) there.
fn travel(b: &mut TrajectoryBuilder, dest: Point, speed: f64) {
    if b.position().distance(&dest) > 0.5 {
        b.travel_to(dest, speed)
            .expect("metropolis speeds are validated positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn make(nodes: usize, seed: u64) -> (Metropolis, TrajectorySet) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut config = MetropolisConfig::for_population(nodes);
        config.days = 2;
        let metro = Metropolis::new(config, nodes, &mut rng);
        let set = metro.generate_all(seed);
        (metro, set)
    }

    #[test]
    fn nodes_sleep_at_home() {
        let (metro, set) = make(60, 3);
        for node in 0..metro.node_count() {
            for day in 0..2 {
                let t = SimTime::from_hours(day * 24 + 3);
                let pos = set.position_at(node, t);
                assert!(
                    pos.distance(&metro.home(node)) < 1.0,
                    "node {node} away from home at 03:00 day {day}"
                );
            }
        }
    }

    #[test]
    fn commuters_reach_work_side() {
        // At 11:00 on a weekday a large share of the population should
        // be away from home (at work).
        let (metro, set) = make(200, 7);
        let away = (0..metro.node_count())
            .filter(|&n| {
                set.position_at(n, SimTime::from_hours(11))
                    .distance(&metro.home(n))
                    > 100.0
            })
            .count();
        assert!(away > 80, "only {away}/200 nodes commuted");
    }

    #[test]
    fn stays_in_bounds() {
        let (metro, set) = make(80, 11);
        let bounds = metro.config().bounds();
        for node in 0..metro.node_count() {
            for hour in 0..48 {
                let p = set.position_at(node, SimTime::from_hours(hour));
                assert!(bounds.contains(&p), "node {node} out of bounds at {hour}h");
            }
        }
    }

    #[test]
    fn deterministic_and_scales_with_population() {
        let (_, a) = make(40, 42);
        let (_, b) = make(40, 42);
        assert_eq!(a, b);
        let big = MetropolisConfig::for_population(150_000);
        let small = MetropolisConfig::for_population(10_000);
        assert!(big.district_count() > small.district_count());
        assert!(big.bounds().area_km2() > small.bounds().area_km2());
    }

    #[test]
    fn district_membership_is_consistent() {
        let (metro, _) = make(120, 5);
        let mut seen = 0usize;
        for d in 0..metro.district_count() {
            for &n in metro.district_members(d) {
                assert_eq!(metro.home_district(n as usize), d);
                seen += 1;
            }
        }
        assert_eq!(seen, metro.node_count());
    }
}
