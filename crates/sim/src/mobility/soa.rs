//! Struct-of-arrays trajectory storage for population-scale worlds.
//!
//! [`Trajectory`] keeps one `Vec` per node, which is fine for the
//! paper's ten phones but means a million-node city pays a million
//! heap allocations and a pointer chase per position lookup.
//! [`TrajectorySet`] flattens every node's waypoints into four shared
//! arrays (offsets, times, xs, ys) so a movement step walks memory
//! linearly — this is the node-state layout the sharded contact kernel
//! (`sos-engine`) is built on.
//!
//! `position_at` intentionally mirrors [`Trajectory::position_at`]
//! operation-for-operation: the sharded kernel's byte-identity contract
//! with the single-loop kernel depends on both producing bit-equal
//! positions for the same waypoints.

use crate::error::SimError;
use crate::geo::Point;
use crate::mobility::trace::Trajectory;
use crate::time::SimTime;

/// A set of piecewise-linear trajectories in struct-of-arrays layout.
///
/// Node `n`'s waypoints live at indices `starts[n] .. starts[n + 1]` of
/// the flat `times` / `xs` / `ys` arrays.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrajectorySet {
    starts: Vec<usize>,
    times: Vec<SimTime>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl TrajectorySet {
    /// Creates an empty set.
    pub fn new() -> TrajectorySet {
        TrajectorySet::default()
    }

    /// Appends a node from raw waypoints, returning its index.
    ///
    /// Validates like [`Trajectory::new`]: returns
    /// [`SimError::EmptyTrajectory`] for an empty list and
    /// [`SimError::UnorderedWaypoints`] when a timestamp moves
    /// backwards. The set is unchanged on error.
    pub fn push_waypoints(
        &mut self,
        waypoints: impl IntoIterator<Item = (SimTime, Point)>,
    ) -> Result<usize, SimError> {
        let base = self.times.len();
        for (t, p) in waypoints {
            if let Some(prev) = self.times.last() {
                if self.times.len() > base && *prev > t {
                    let index = self.times.len() - base;
                    self.times.truncate(base);
                    self.xs.truncate(base);
                    self.ys.truncate(base);
                    return Err(SimError::UnorderedWaypoints { index });
                }
            }
            self.times.push(t);
            self.xs.push(p.x);
            self.ys.push(p.y);
        }
        if self.times.len() == base {
            return Err(SimError::EmptyTrajectory);
        }
        if self.starts.is_empty() {
            self.starts.push(0);
        }
        self.starts.push(self.times.len());
        Ok(self.starts.len() - 2)
    }

    /// Appends an already-validated [`Trajectory`], returning its index.
    pub fn push_trajectory(&mut self, tr: &Trajectory) -> usize {
        match self.push_waypoints(tr.waypoints().iter().copied()) {
            Ok(node) => node,
            // Unreachable: a Trajectory is non-empty and ordered by
            // construction.
            Err(_) => unreachable!("Trajectory invariants guarantee valid waypoints"),
        }
    }

    /// Builds a set from a slice of validated trajectories.
    pub fn from_trajectories(trs: &[Trajectory]) -> TrajectorySet {
        let mut set = TrajectorySet::new();
        for tr in trs {
            set.push_trajectory(tr);
        }
        set
    }

    /// Converts back to per-node [`Trajectory`] values (for tooling and
    /// cross-checking against the single-loop kernel; allocates one
    /// `Vec` per node).
    pub fn to_trajectories(&self) -> Vec<Trajectory> {
        (0..self.node_count())
            .map(|n| {
                let (lo, hi) = self.span(n);
                let wps: Vec<(SimTime, Point)> = (lo..hi)
                    .map(|i| (self.times[i], Point::new(self.xs[i], self.ys[i])))
                    .collect();
                match Trajectory::new(wps) {
                    Ok(tr) => tr,
                    // Unreachable: set waypoints are validated on insert.
                    Err(_) => unreachable!("TrajectorySet stores validated waypoints"),
                }
            })
            .collect()
    }

    /// Number of nodes in the set.
    pub fn node_count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Total number of stored waypoints across all nodes.
    pub fn waypoint_count(&self) -> usize {
        self.times.len()
    }

    fn span(&self, node: usize) -> (usize, usize) {
        (self.starts[node], self.starts[node + 1])
    }

    /// The waypoint timestamps of `node`.
    pub fn times(&self, node: usize) -> &[SimTime] {
        let (lo, hi) = self.span(node);
        &self.times[lo..hi]
    }

    /// The `idx`-th waypoint position of `node`.
    pub fn point(&self, node: usize, idx: usize) -> Point {
        let (lo, hi) = self.span(node);
        let i = lo + idx;
        debug_assert!(i < hi);
        Point::new(self.xs[i], self.ys[i])
    }

    /// End time of `node`'s trajectory (its last waypoint).
    pub fn end_time(&self, node: usize) -> SimTime {
        let (_, hi) = self.span(node);
        self.times[hi - 1]
    }

    /// Position of `node` at time `t` by linear interpolation.
    ///
    /// Bit-identical to [`Trajectory::position_at`] on the same
    /// waypoints (same comparisons, same `lerp` arithmetic).
    pub fn position_at(&self, node: usize, t: SimTime) -> Point {
        let (lo, hi) = self.span(node);
        let times = &self.times[lo..hi];
        if t <= times[0] {
            return Point::new(self.xs[lo], self.ys[lo]);
        }
        if t >= times[times.len() - 1] {
            return Point::new(self.xs[hi - 1], self.ys[hi - 1]);
        }
        let idx = times.partition_point(|wt| *wt <= t);
        let (t0, t1) = (times[idx - 1], times[idx]);
        let p0 = Point::new(self.xs[lo + idx - 1], self.ys[lo + idx - 1]);
        let p1 = Point::new(self.xs[lo + idx], self.ys[lo + idx]);
        if t1 == t0 {
            return p1;
        }
        let frac =
            (t.as_millis() - t0.as_millis()) as f64 / (t1.as_millis() - t0.as_millis()) as f64;
        p0.lerp(&p1, frac)
    }

    /// The closed interval of x-coordinates `node` can occupy during
    /// `[t0, t1]`: the interpolated positions at both endpoints plus
    /// every waypoint inside the window. Used by the sharded kernel to
    /// decide which shards must host the node for an epoch; it may be a
    /// slight superset of the truly reachable x-range (endpoints on the
    /// window boundary are included), which is always safe.
    pub fn extent_x(&self, node: usize, t0: SimTime, t1: SimTime) -> (f64, f64) {
        let x0 = self.position_at(node, t0).x;
        let x1 = self.position_at(node, t1).x;
        let (mut lo, mut hi) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (s, e) = self.span(node);
        let times = &self.times[s..e];
        let a = times.partition_point(|wt| *wt < t0);
        let b = times.partition_point(|wt| *wt <= t1);
        for i in a..b {
            let x = self.xs[s + i];
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn tr(wps: &[(u64, f64, f64)]) -> Trajectory {
        Trajectory::new(
            wps.iter()
                .map(|&(t, x, y)| (SimTime::from_secs(t), Point::new(x, y)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn round_trips_trajectories() {
        let trs = vec![
            tr(&[(0, 0.0, 0.0), (10, 100.0, 50.0)]),
            Trajectory::stationary(Point::new(7.0, 8.0)),
            tr(&[(5, 1.0, 2.0), (5, 9.0, 9.0), (20, 3.0, 4.0)]),
        ];
        let set = TrajectorySet::from_trajectories(&trs);
        assert_eq!(set.node_count(), 3);
        assert_eq!(set.waypoint_count(), 6);
        assert_eq!(set.to_trajectories(), trs);
    }

    #[test]
    fn position_matches_trajectory_exactly() {
        let trs = vec![
            tr(&[
                (0, 0.0, 0.0),
                (10, 100.0, 50.0),
                (10, 3.0, 4.0),
                (30, 9.0, 9.0),
            ]),
            tr(&[(5, 1.0, 2.0)]),
        ];
        let set = TrajectorySet::from_trajectories(&trs);
        for (n, t) in trs.iter().enumerate() {
            for ms in (0..40_000).step_by(137) {
                let at = SimTime::from_millis(ms);
                let a = t.position_at(at);
                let b = set.position_at(n, at);
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "node {n} at {ms} ms");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "node {n} at {ms} ms");
            }
        }
    }

    #[test]
    fn extent_covers_sampled_positions() {
        let t = tr(&[(0, 0.0, 0.0), (10, 100.0, 0.0), (20, -50.0, 0.0)]);
        let set = TrajectorySet::from_trajectories(&[t]);
        let (t0, t1) = (SimTime::from_secs(3), SimTime::from_secs(17));
        let (lo, hi) = set.extent_x(0, t0, t1);
        let mut at = t0;
        while at <= t1 {
            let x = set.position_at(0, at).x;
            assert!(x >= lo && x <= hi, "x {x} outside [{lo}, {hi}]");
            at += SimDuration::from_millis(250);
        }
        // The interior waypoint (x = 100) is inside the window.
        assert_eq!(hi, 100.0);
    }

    #[test]
    fn push_waypoints_validates() {
        let mut set = TrajectorySet::new();
        assert_eq!(
            set.push_waypoints(Vec::new()),
            Err(SimError::EmptyTrajectory)
        );
        let unordered = vec![
            (SimTime::from_secs(5), Point::new(0.0, 0.0)),
            (SimTime::from_secs(1), Point::new(1.0, 0.0)),
        ];
        assert_eq!(
            set.push_waypoints(unordered),
            Err(SimError::UnorderedWaypoints { index: 1 })
        );
        // Failed pushes leave the set unchanged.
        assert_eq!(set.node_count(), 0);
        assert_eq!(set.waypoint_count(), 0);
        let node = set
            .push_waypoints(vec![(SimTime::ZERO, Point::new(1.0, 2.0))])
            .unwrap();
        assert_eq!(node, 0);
        assert_eq!(set.end_time(0), SimTime::ZERO);
        assert_eq!(set.times(0), &[SimTime::ZERO]);
        assert_eq!(set.point(0, 0), Point::new(1.0, 2.0));
    }
}
