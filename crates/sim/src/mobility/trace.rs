//! Piecewise-linear trajectories: the common output format of all
//! mobility generators and the input to contact detection.

use crate::error::SimError;
use crate::geo::Point;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A node's movement as a sequence of `(time, position)` waypoints with
/// linear interpolation between them.
///
/// Before the first waypoint the node sits at the first position; after
/// the last it sits at the last.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<(SimTime, Point)>,
}

impl Trajectory {
    /// Creates a trajectory from waypoints.
    ///
    /// Returns [`SimError::EmptyTrajectory`] for an empty list and
    /// [`SimError::UnorderedWaypoints`] when a timestamp moves backwards
    /// — external trace data must never be able to panic the process.
    pub fn new(waypoints: Vec<(SimTime, Point)>) -> Result<Trajectory, SimError> {
        if waypoints.is_empty() {
            return Err(SimError::EmptyTrajectory);
        }
        for (i, w) in waypoints.windows(2).enumerate() {
            if w[0].0 > w[1].0 {
                return Err(SimError::UnorderedWaypoints { index: i + 1 });
            }
        }
        Ok(Trajectory { waypoints })
    }

    /// A node that never moves.
    pub fn stationary(p: Point) -> Trajectory {
        Trajectory {
            waypoints: vec![(SimTime::ZERO, p)],
        }
    }

    /// The waypoint list.
    pub fn waypoints(&self) -> &[(SimTime, Point)] {
        &self.waypoints
    }

    /// Position at time `t` by linear interpolation.
    pub fn position_at(&self, t: SimTime) -> Point {
        let wps = &self.waypoints;
        if t <= wps[0].0 {
            return wps[0].1;
        }
        if t >= wps[wps.len() - 1].0 {
            return wps[wps.len() - 1].1;
        }
        // Binary search for the segment containing t.
        let idx = wps.partition_point(|(wt, _)| *wt <= t);
        let (t0, p0) = wps[idx - 1];
        let (t1, p1) = wps[idx];
        if t1 == t0 {
            return p1;
        }
        let frac =
            (t.as_millis() - t0.as_millis()) as f64 / (t1.as_millis() - t0.as_millis()) as f64;
        p0.lerp(&p1, frac)
    }

    /// Total path length in metres.
    pub fn path_length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].1.distance(&w[1].1))
            .sum()
    }

    /// End time of the trajectory.
    pub fn end_time(&self) -> SimTime {
        self.waypoints[self.waypoints.len() - 1].0
    }
}

/// A builder that appends movement segments in time order.
#[derive(Clone, Debug)]
pub struct TrajectoryBuilder {
    waypoints: Vec<(SimTime, Point)>,
    cursor: SimTime,
    position: Point,
}

impl TrajectoryBuilder {
    /// Starts at `start` position at time `t0`.
    pub fn new(t0: SimTime, start: Point) -> TrajectoryBuilder {
        TrajectoryBuilder {
            waypoints: vec![(t0, start)],
            cursor: t0,
            position: start,
        }
    }

    /// Current position of the builder cursor.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Current time of the builder cursor.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// Stays in place until `until` (no-op if `until` is in the past).
    pub fn wait_until(&mut self, until: SimTime) -> &mut Self {
        if until > self.cursor {
            self.cursor = until;
            self.waypoints.push((self.cursor, self.position));
        }
        self
    }

    /// Moves in a straight line to `dest` at `speed_mps` metres/second.
    ///
    /// Returns [`SimError::NonPositiveSpeed`] if `speed_mps` is zero,
    /// negative, or not finite.
    pub fn travel_to(&mut self, dest: Point, speed_mps: f64) -> Result<&mut Self, SimError> {
        if !(speed_mps > 0.0 && speed_mps.is_finite()) {
            return Err(SimError::NonPositiveSpeed);
        }
        let dist = self.position.distance(&dest);
        let travel_ms = (dist / speed_mps * 1000.0).round() as u64;
        self.cursor = SimTime::from_millis(self.cursor.as_millis() + travel_ms.max(1));
        self.position = dest;
        self.waypoints.push((self.cursor, dest));
        Ok(self)
    }

    /// Finishes the trajectory.
    pub fn build(self) -> Trajectory {
        Trajectory::new(self.waypoints).expect("builder waypoints are ordered by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation() {
        let tr = Trajectory::new(vec![
            (SimTime::from_secs(0), Point::new(0.0, 0.0)),
            (SimTime::from_secs(10), Point::new(100.0, 0.0)),
        ])
        .unwrap();
        assert_eq!(tr.position_at(SimTime::from_secs(5)), Point::new(50.0, 0.0));
        // Clamped at both ends.
        assert_eq!(tr.position_at(SimTime::ZERO), Point::new(0.0, 0.0));
        assert_eq!(
            tr.position_at(SimTime::from_secs(99)),
            Point::new(100.0, 0.0)
        );
    }

    #[test]
    fn stationary_everywhere() {
        let p = Point::new(5.0, 6.0);
        let tr = Trajectory::stationary(p);
        assert_eq!(tr.position_at(SimTime::from_hours(100)), p);
        assert_eq!(tr.path_length(), 0.0);
    }

    #[test]
    fn builder_sequences_segments() {
        let mut b = TrajectoryBuilder::new(SimTime::ZERO, Point::new(0.0, 0.0));
        b.wait_until(SimTime::from_secs(60));
        b.travel_to(Point::new(60.0, 0.0), 1.0).unwrap(); // 60 s of travel
        let tr = b.build();
        assert_eq!(tr.position_at(SimTime::from_secs(30)), Point::new(0.0, 0.0));
        assert_eq!(
            tr.position_at(SimTime::from_secs(90)),
            Point::new(30.0, 0.0)
        );
        assert!((tr.path_length() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn unordered_waypoints_error() {
        let err = Trajectory::new(vec![
            (SimTime::from_secs(5), Point::new(0.0, 0.0)),
            (SimTime::from_secs(1), Point::new(1.0, 0.0)),
        ])
        .unwrap_err();
        assert_eq!(err, SimError::UnorderedWaypoints { index: 1 });
    }

    #[test]
    fn empty_waypoints_error() {
        assert_eq!(
            Trajectory::new(Vec::new()).unwrap_err(),
            SimError::EmptyTrajectory
        );
    }

    #[test]
    fn bad_speed_errors() {
        let mut b = TrajectoryBuilder::new(SimTime::ZERO, Point::new(0.0, 0.0));
        for speed in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                b.travel_to(Point::new(1.0, 0.0), speed).unwrap_err(),
                SimError::NonPositiveSpeed
            );
        }
        // The failed calls left the builder untouched.
        assert_eq!(b.build().waypoints().len(), 1);
    }
}
