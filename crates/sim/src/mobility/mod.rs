//! Mobility: trajectory representation and generators.
//!
//! Trajectories are piecewise-linear paths through the plane; generators
//! produce them deterministically from a seed. Two generators are
//! provided:
//!
//! * [`random_waypoint`] — the classic DTN-simulation baseline the paper
//!   contrasts itself against (§VI-B: "DTN simulations typically model 50
//!   to 100 nodes in a constrained simulation space")
//! * [`schedule`] — a daily home/campus/errand schedule with nightly
//!   sleep, matching the field study's student population ("node mobility
//!   tends to become stationary, for at least 5-8 hours a day due to the
//!   human requirement to sleep")
//! * [`metropolis`] — the city-scale extension of the daily schedule:
//!   a district grid with housing blocks, workplaces, and transit
//!   lines, whose area scales with the population
//!
//! [`soa`] provides the struct-of-arrays [`TrajectorySet`] storage the
//! sharded contact kernel steps cache-linearly.

pub mod metropolis;
pub mod random_waypoint;
pub mod schedule;
pub mod soa;
pub mod trace;

pub use metropolis::{Metropolis, MetropolisConfig};
pub use random_waypoint::RandomWaypoint;
pub use schedule::{DailySchedule, ScheduleConfig};
pub use soa::TrajectorySet;
pub use trace::Trajectory;
