//! The random-waypoint mobility model: the synthetic baseline used by the
//! simulation studies the paper contrasts with its in-vivo deployment.

use crate::geo::Bounds;
use crate::mobility::trace::{Trajectory, TrajectoryBuilder};
use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// Configuration for [`RandomWaypoint`] trajectory generation.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    /// The simulation area.
    pub bounds: Bounds,
    /// Minimum movement speed, metres/second.
    pub min_speed: f64,
    /// Maximum movement speed, metres/second.
    pub max_speed: f64,
    /// Minimum pause at each waypoint.
    pub min_pause: SimDuration,
    /// Maximum pause at each waypoint.
    pub max_pause: SimDuration,
}

impl RandomWaypoint {
    /// A pedestrian-speed configuration in the given bounds
    /// (0.5–1.5 m/s, 0–120 s pauses).
    pub fn pedestrian(bounds: Bounds) -> RandomWaypoint {
        RandomWaypoint {
            bounds,
            min_speed: 0.5,
            max_speed: 1.5,
            min_pause: SimDuration::ZERO,
            max_pause: SimDuration::from_secs(120),
        }
    }

    /// Generates a trajectory of at least `duration` for one node.
    ///
    /// # Panics
    ///
    /// Panics if speeds are non-positive or `min > max` for speed/pause.
    pub fn generate<R: Rng>(&self, rng: &mut R, duration: SimDuration) -> Trajectory {
        assert!(
            self.min_speed > 0.0 && self.max_speed >= self.min_speed,
            "invalid speed range"
        );
        assert!(self.min_pause <= self.max_pause, "invalid pause range");
        let start = self.bounds.sample(rng);
        let mut b = TrajectoryBuilder::new(SimTime::ZERO, start);
        let end = SimTime::ZERO + duration;
        while b.now() < end {
            let dest = self.bounds.sample(rng);
            let speed = rng.gen_range(self.min_speed..=self.max_speed);
            b.travel_to(dest, speed)
                .expect("speed range validated above");
            let pause_ms = rng.gen_range(self.min_pause.as_millis()..=self.max_pause.as_millis());
            let pause_end = SimTime::from_millis(b.now().as_millis() + pause_ms);
            b.wait_until(pause_end);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stays_in_bounds_and_covers_duration() {
        let bounds = Bounds::new(1000.0, 500.0);
        let rwp = RandomWaypoint::pedestrian(bounds);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let tr = rwp.generate(&mut rng, SimDuration::from_hours(2));
        assert!(tr.end_time() >= SimTime::from_hours(2));
        for step in 0..200 {
            let t = SimTime::from_secs(step * 36);
            assert!(bounds.contains(&tr.position_at(t)), "step {step}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let bounds = Bounds::new(1000.0, 500.0);
        let rwp = RandomWaypoint::pedestrian(bounds);
        let t1 = rwp.generate(
            &mut rand::rngs::StdRng::seed_from_u64(5),
            SimDuration::from_hours(1),
        );
        let t2 = rwp.generate(
            &mut rand::rngs::StdRng::seed_from_u64(5),
            SimDuration::from_hours(1),
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seeds_differ() {
        let bounds = Bounds::new(1000.0, 500.0);
        let rwp = RandomWaypoint::pedestrian(bounds);
        let t1 = rwp.generate(
            &mut rand::rngs::StdRng::seed_from_u64(1),
            SimDuration::from_hours(1),
        );
        let t2 = rwp.generate(
            &mut rand::rngs::StdRng::seed_from_u64(2),
            SimDuration::from_hours(1),
        );
        assert_ne!(t1, t2);
    }
}
