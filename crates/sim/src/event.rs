//! A generic discrete-event queue: events pop in time order, with FIFO
//! tie-breaking for events scheduled at the same instant.

use crate::error::SimError;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue.
///
/// ```
/// use sos_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "later").unwrap();
/// q.schedule(SimTime::from_secs(1), "sooner").unwrap();
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t.as_secs(), 1);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Returns [`SimError::SchedulePast`] if `at` is before the current
    /// simulation time — scheduling into the past indicates a logic
    /// error in the caller, and propagating it keeps the substrate
    /// panic-free even when event times are derived from external data.
    /// The queue is left unchanged on error.
    pub fn schedule(&mut self, at: SimTime, event: E) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::SchedulePast { at, now: self.now });
        }
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        Ok(())
    }

    /// Pops the earliest event, advancing the queue's clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The queue's clock: the time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c').unwrap();
        q.schedule(SimTime::from_secs(1), 'a').unwrap();
        q.schedule(SimTime::from_secs(2), 'b').unwrap();
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_for_simultaneous_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ()).unwrap();
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn scheduling_into_past_errors() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ()).unwrap();
        q.pop();
        assert_eq!(
            q.schedule(SimTime::from_secs(1), ()),
            Err(crate::SimError::SchedulePast {
                at: SimTime::from_secs(1),
                now: SimTime::from_secs(5),
            })
        );
        // The failed schedule left the queue unchanged.
        assert!(q.is_empty());
        // Scheduling exactly at the clock is still allowed.
        q.schedule(SimTime::from_secs(5), ()).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1), ()).unwrap();
        assert_eq!(q.len(), 1);
    }
}
