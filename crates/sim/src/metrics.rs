//! Measurement recorders matching the paper's evaluation outputs:
//! delivery-delay CDFs split by hop count (Fig. 4c) and per-subscription
//! delivery ratios (Fig. 4d).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An empirical cumulative distribution over `f64` samples.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Cdf {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x`.
    pub fn fraction_gt(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_le(x)
    }

    /// The value at quantile `q` in `[0, 1]` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty cdf");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Evaluates the CDF at each of `xs`, returning `(x, F(x))` pairs —
    /// the series plotted in the paper's figures.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }
}

/// One recorded delivery: a message reached an interested subscriber.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// When the originator created the message.
    pub created: SimTime,
    /// When this subscriber received it.
    pub delivered: SimTime,
    /// Number of D2D hops the delivered copy travelled (1 = direct from
    /// the originator).
    pub hops: u32,
}

impl DeliveryRecord {
    /// Delivery delay.
    pub fn delay(&self) -> SimDuration {
        self.delivered - self.created
    }
}

/// Records delays for Fig. 4c: CDFs of delivery delay for "1-hop" copies
/// and for "All" copies.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DelayRecorder {
    records: Vec<DeliveryRecord>,
}

impl DelayRecorder {
    /// Creates an empty recorder.
    pub fn new() -> DelayRecorder {
        DelayRecorder::default()
    }

    /// Records one delivery.
    pub fn record(&mut self, created: SimTime, delivered: SimTime, hops: u32) {
        self.records.push(DeliveryRecord {
            created,
            delivered,
            hops,
        });
    }

    /// All records.
    pub fn records(&self) -> &[DeliveryRecord] {
        &self.records
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Delay CDF in hours over all deliveries ("All" in Fig. 4c).
    pub fn cdf_all_hours(&self) -> Cdf {
        Cdf::from_samples(
            self.records
                .iter()
                .map(|r| r.delay().as_hours_f64())
                .collect(),
        )
    }

    /// Delay CDF in hours over 1-hop deliveries only.
    pub fn cdf_one_hop_hours(&self) -> Cdf {
        Cdf::from_samples(
            self.records
                .iter()
                .filter(|r| r.hops <= 1)
                .map(|r| r.delay().as_hours_f64())
                .collect(),
        )
    }

    /// Fraction of deliveries that arrived in exactly one hop
    /// (0.826 in the field study).
    pub fn fraction_one_hop(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let one = self.records.iter().filter(|r| r.hops <= 1).count();
        one as f64 / self.records.len() as f64
    }
}

/// Records per-subscription delivery ratios for Fig. 4d.
///
/// A subscription is a directed follow edge; its delivery ratio is the
/// fraction of the followee's messages that reached the follower.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeliveryRecorder {
    /// (follower, followee) → (delivered, expected)
    counts: HashMap<(usize, usize), (u64, u64)>,
}

impl DeliveryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> DeliveryRecorder {
        DeliveryRecorder::default()
    }

    /// Registers that `followee` published a message `follower` wants.
    pub fn expect_delivery(&mut self, follower: usize, followee: usize) {
        self.counts.entry((follower, followee)).or_insert((0, 0)).1 += 1;
    }

    /// Registers that one such message was delivered.
    pub fn delivered(&mut self, follower: usize, followee: usize) {
        self.counts.entry((follower, followee)).or_insert((0, 0)).0 += 1;
    }

    /// Per-subscription delivery ratios (subscriptions with zero expected
    /// messages are skipped).
    pub fn ratios(&self) -> Vec<f64> {
        let mut keys: Vec<_> = self.counts.keys().copied().collect();
        keys.sort_unstable();
        keys.iter()
            .filter_map(|k| {
                let (d, e) = self.counts[k];
                if e == 0 {
                    None
                } else {
                    Some(d as f64 / e as f64)
                }
            })
            .collect()
    }

    /// CDF over subscription delivery ratios (the Fig. 4d curve).
    pub fn ratio_cdf(&self) -> Cdf {
        Cdf::from_samples(self.ratios())
    }

    /// Fraction of subscriptions whose ratio exceeds `threshold`
    /// (the paper reports 0.30 of subscriptions > 0.80, etc.).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let ratios = self.ratios();
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().filter(|r| **r > threshold).count() as f64 / ratios.len() as f64
    }

    /// Number of subscriptions with at least one expected message.
    pub fn subscription_count(&self) -> usize {
        self.ratios().len()
    }

    /// Total delivered / total expected over all subscriptions.
    pub fn overall_ratio(&self) -> f64 {
        let (d, e) = self
            .counts
            .values()
            .fold((0u64, 0u64), |acc, v| (acc.0 + v.0, acc.1 + v.1));
        if e == 0 {
            0.0
        } else {
            d as f64 / e as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_le(0.5), 0.0);
        assert_eq!(cdf.fraction_le(2.0), 0.5);
        assert_eq!(cdf.fraction_le(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(4.0));
        assert_eq!(cdf.mean(), Some(2.5));
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = Cdf::from_samples(vec![5.0, 1.0, 3.0, 3.0, 2.0]);
        let series = cdf.series(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone: {series:?}");
        }
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_le(1.0), 0.0);
        assert_eq!(cdf.mean(), None);
    }

    #[test]
    fn cdf_drops_nans() {
        let cdf = Cdf::from_samples(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn delay_recorder_splits_hops() {
        let mut rec = DelayRecorder::new();
        rec.record(SimTime::ZERO, SimTime::from_hours(1), 1);
        rec.record(SimTime::ZERO, SimTime::from_hours(2), 1);
        rec.record(SimTime::ZERO, SimTime::from_hours(10), 3);
        assert_eq!(rec.cdf_all_hours().len(), 3);
        assert_eq!(rec.cdf_one_hop_hours().len(), 2);
        assert!((rec.fraction_one_hop() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rec.cdf_all_hours().fraction_le(2.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn delivery_recorder_ratios() {
        let mut rec = DeliveryRecorder::new();
        // Subscription (1 follows 2): 4 expected, 3 delivered.
        for _ in 0..4 {
            rec.expect_delivery(1, 2);
        }
        for _ in 0..3 {
            rec.delivered(1, 2);
        }
        // Subscription (3 follows 2): 2 expected, 2 delivered.
        rec.expect_delivery(3, 2);
        rec.expect_delivery(3, 2);
        rec.delivered(3, 2);
        rec.delivered(3, 2);
        let ratios = rec.ratios();
        assert_eq!(ratios, vec![0.75, 1.0]);
        assert_eq!(rec.subscription_count(), 2);
        assert!((rec.fraction_above(0.8) - 0.5).abs() < 1e-12);
        assert!((rec.overall_ratio() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn delivery_recorder_empty_subscription_skipped() {
        let mut rec = DeliveryRecorder::new();
        rec.delivered(0, 1); // delivered without expectation (late expect)
        assert!(rec.ratios().is_empty() || !rec.ratios()[0].is_infinite());
    }
}
