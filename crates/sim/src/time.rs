//! Simulated time: instants and durations with millisecond resolution.
//!
//! No wall-clock time is used anywhere in the workspace's library code;
//! all timestamps are [`SimTime`] measured from the simulation epoch.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (milliseconds since the simulation epoch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1000)
    }

    /// Creates an instant from minutes since the epoch.
    pub const fn from_mins(m: u64) -> SimTime {
        SimTime(m * 60_000)
    }

    /// Creates an instant from hours since the epoch.
    pub const fn from_hours(h: u64) -> SimTime {
        SimTime(h * 3_600_000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Hours since the epoch, fractional.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The hour-of-day in `[0, 24)` assuming the epoch is midnight.
    pub fn hour_of_day(self) -> f64 {
        (self.0 % 86_400_000) as f64 / 3_600_000.0
    }

    /// The day index since the epoch (day 0, day 1, ...).
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400_000
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1000)
    }

    /// From minutes.
    pub const fn from_mins(m: u64) -> SimDuration {
        SimDuration(m * 60_000)
    }

    /// From hours.
    pub const fn from_hours(h: u64) -> SimDuration {
        SimDuration(h * 3_600_000)
    }

    /// In milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// In whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// In hours, fractional.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Scales a duration by a float factor (used for jitter), rounding to
    /// the nearest millisecond and saturating at zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).max(0.0).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}h", self.as_hours_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let within = self.0 % 86_400_000;
        let h = within / 3_600_000;
        let m = (within % 3_600_000) / 60_000;
        let s = (within % 60_000) / 1000;
        write!(f, "d{day} {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1000 {
            write!(f, "{}ms", self.0)
        } else if self.0 < 3_600_000 {
            write!(f, "{:.1}s", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{:.2}h", self.as_hours_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!((t - SimTime::from_secs(10)).as_secs(), 5);
        // Saturating subtraction.
        assert_eq!(
            (SimTime::from_secs(1) - SimTime::from_secs(9)).as_millis(),
            0
        );
    }

    #[test]
    fn day_and_hour() {
        let t = SimTime::from_hours(49) + SimDuration::from_mins(30);
        assert_eq!(t.day_index(), 2);
        assert!((t.hour_of_day() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_hours(26) + SimDuration::from_secs(61);
        assert_eq!(t.to_string(), "d1 02:01:01");
    }

    #[test]
    fn jitter_scaling() {
        let d = SimDuration::from_secs(100).mul_f64(1.5);
        assert_eq!(d.as_secs(), 150);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }
}
