//! A flat metric plane for node positions.
//!
//! The field study area is ~11 km × 8 km (paper Fig. 4b); at that scale a
//! flat plane in metres is an adequate model and keeps distances exact.

use serde::{Deserialize, Serialize};

/// A position in metres on the simulation plane.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East–west coordinate in metres.
    pub x: f64,
    /// North–south coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: the point `frac` of the way to `other`
    /// (`frac` clamped to `[0, 1]`).
    pub fn lerp(&self, other: &Point, frac: f64) -> Point {
        let f = frac.clamp(0.0, 1.0);
        Point {
            x: self.x + (other.x - self.x) * f,
            y: self.y + (other.y - self.y) * f,
        }
    }
}

/// A rectangular simulation area `[0, width] × [0, height]`, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Width (east–west extent) in metres.
    pub width: f64,
    /// Height (north–south extent) in metres.
    pub height: f64,
}

impl Bounds {
    /// Creates bounds.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions.
    pub fn new(width: f64, height: f64) -> Bounds {
        assert!(width > 0.0 && height > 0.0, "bounds must be positive");
        Bounds { width, height }
    }

    /// The ~11 km × 8 km Gainesville field-study area of the paper.
    pub fn gainesville() -> Bounds {
        Bounds::new(11_000.0, 8_000.0)
    }

    /// Area in square kilometres (88 km² for the field study).
    pub fn area_km2(&self) -> f64 {
        self.width * self.height / 1e6
    }

    /// True if `p` lies inside (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x <= self.width && p.y <= self.height
    }

    /// Clamps a point into the bounds.
    pub fn clamp(&self, p: Point) -> Point {
        Point {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }

    /// A uniformly random point inside the bounds.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> Point {
        Point {
            x: rng.gen_range(0.0..=self.width),
            y: rng.gen_range(0.0..=self.height),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_clamp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 0.0));
        assert_eq!(a.lerp(&b, 7.0), b, "over-interpolation clamps");
    }

    #[test]
    fn gainesville_area() {
        let b = Bounds::gainesville();
        assert!((b.area_km2() - 88.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_stays_inside() {
        let b = Bounds::new(100.0, 50.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(b.contains(&b.sample(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bounds_panic() {
        Bounds::new(0.0, 5.0);
    }
}
