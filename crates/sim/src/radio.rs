//! The three bearers of Apple's Multipeer Connectivity and their modelled
//! ranges and link characteristics.
//!
//! Apple does not publish MPC radio parameters (the paper notes "the
//! company does not disclose specific details on how MPC works"), so we
//! use typical figures for the underlying technologies.

use serde::{Deserialize, Serialize};

/// A device-to-device bearer available to the ad hoc manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioTech {
    /// Bluetooth personal area network (~10 m).
    Bluetooth,
    /// Peer-to-peer WiFi / AWDL (~60 m line of sight).
    PeerToPeerWifi,
    /// Both devices on the same infrastructure WiFi network (~100 m
    /// effective radius around an access point).
    InfrastructureWifi,
}

impl RadioTech {
    /// All bearers, strongest range last.
    pub const ALL: [RadioTech; 3] = [
        RadioTech::Bluetooth,
        RadioTech::PeerToPeerWifi,
        RadioTech::InfrastructureWifi,
    ];

    /// Nominal communication range in metres.
    pub fn range_m(&self) -> f64 {
        match self {
            RadioTech::Bluetooth => 10.0,
            RadioTech::PeerToPeerWifi => 60.0,
            RadioTech::InfrastructureWifi => 100.0,
        }
    }

    /// Nominal application-layer throughput in bytes/second.
    pub fn bandwidth_bps(&self) -> f64 {
        match self {
            RadioTech::Bluetooth => 125_000.0,            // ~1 Mbit/s
            RadioTech::PeerToPeerWifi => 3_000_000.0,     // ~24 Mbit/s
            RadioTech::InfrastructureWifi => 1_500_000.0, // shared AP
        }
    }

    /// One-way frame latency in milliseconds.
    pub fn latency_ms(&self) -> u64 {
        match self {
            RadioTech::Bluetooth => 40,
            RadioTech::PeerToPeerWifi => 8,
            RadioTech::InfrastructureWifi => 15,
        }
    }

    /// Frame loss probability on an established link.
    pub fn loss_probability(&self) -> f64 {
        match self {
            RadioTech::Bluetooth => 0.02,
            RadioTech::PeerToPeerWifi => 0.01,
            RadioTech::InfrastructureWifi => 0.005,
        }
    }

    /// The best (highest-bandwidth) bearer usable at `distance_m`, if any.
    ///
    /// Mirrors MPC behaviour: the framework silently picks a transport;
    /// nearby devices get p2p WiFi, very close devices could use any.
    pub fn best_for_distance(distance_m: f64, infra_available: bool) -> Option<RadioTech> {
        let mut best: Option<RadioTech> = None;
        for tech in RadioTech::ALL {
            if tech == RadioTech::InfrastructureWifi && !infra_available {
                continue;
            }
            if distance_m <= tech.range_m() {
                best = match best {
                    Some(b) if b.bandwidth_bps() >= tech.bandwidth_bps() => Some(b),
                    _ => Some(tech),
                };
            }
        }
        best
    }

    /// The maximum D2D range with the given infrastructure availability.
    pub fn max_range_m(infra_available: bool) -> f64 {
        if infra_available {
            RadioTech::InfrastructureWifi.range_m()
        } else {
            RadioTech::PeerToPeerWifi.range_m()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_ordered() {
        assert!(RadioTech::Bluetooth.range_m() < RadioTech::PeerToPeerWifi.range_m());
        assert!(RadioTech::PeerToPeerWifi.range_m() < RadioTech::InfrastructureWifi.range_m());
    }

    #[test]
    fn best_bearer_selection() {
        // Very close: p2p wifi wins on bandwidth.
        assert_eq!(
            RadioTech::best_for_distance(5.0, false),
            Some(RadioTech::PeerToPeerWifi)
        );
        // 80 m: only infrastructure reaches, and only if available.
        assert_eq!(
            RadioTech::best_for_distance(80.0, true),
            Some(RadioTech::InfrastructureWifi)
        );
        assert_eq!(RadioTech::best_for_distance(80.0, false), None);
        // Out of range entirely.
        assert_eq!(RadioTech::best_for_distance(500.0, true), None);
    }

    #[test]
    fn max_range() {
        assert_eq!(RadioTech::max_range_m(false), 60.0);
        assert_eq!(RadioTech::max_range_m(true), 100.0);
    }
}
