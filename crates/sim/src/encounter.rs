//! The encounter-level abstraction: a timeline of contact transitions.
//!
//! The paper's whole argument is *in vivo* evaluation — routing schemes
//! judged on the encounter log of a real multi-week deployment, not
//! only on synthetic mobility. What a scheme actually consumes is not
//! geometry but a **timeline**: pairwise `ContactUp` / `ContactDown`
//! transitions. [`EncounterSource`] captures exactly that interface.
//!
//! Every geometric [`ContactSource`] (the naive [`World`](crate::World)
//! scan, `sos-engine`'s grid kernel) adapts onto it through a blanket
//! implementation, and `sos-trace` implements it directly for recorded
//! and synthetic traces — so the experiment driver is decoupled from
//! geometry entirely and can replay a field study, a CRAWDAD import, or
//! a community-structured synthetic trace through the identical code
//! path.
//!
//! Determinism rule: the driver derives **all** connectivity and link
//! state from the event timeline (never from positions), so two sources
//! producing the same timeline produce byte-identical runs.

use crate::geo::Point;
use crate::time::SimTime;
use crate::world::{collapse_intervals, ContactEvent, ContactInterval, ContactSource};

/// A timeline of pairwise contact transitions over a node population.
///
/// This is the interface between *any* encounter substrate — live
/// geometric simulation, a recorded trace, a synthetic social trace —
/// and scheme evaluation. Implementations must uphold:
///
/// * events are ordered by time (ties broken arbitrarily but
///   deterministically);
/// * per pair, phases strictly alternate starting with `Up`;
/// * node indices satisfy `a < b < node_count()`.
pub trait EncounterSource {
    /// Number of nodes in the population.
    fn node_count(&self) -> usize;

    /// Every contact transition in `[start, end]`, in time order.
    ///
    /// Contacts already open at `start` must be reported as an `Up`
    /// event at `start` (mirroring the initial scan of the geometric
    /// sources), and contacts still open at `end` get no closing event.
    fn encounter_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent>;

    /// Closed contact intervals over `[start, end]`; contacts still
    /// open at `end` are closed there.
    fn encounter_intervals(&self, start: SimTime, end: SimTime) -> Vec<ContactInterval> {
        collapse_intervals(&self.encounter_events(start, end), end)
    }

    /// Where `node` is at `t`, if the source knows geometry at all.
    ///
    /// Purely observational (map overlays like the paper's Fig. 4b);
    /// **never** used for connectivity decisions. Trace-backed sources
    /// return `None`.
    fn node_position(&self, node: usize, t: SimTime) -> Option<Point> {
        let _ = (node, t);
        None
    }

    /// The communication range that produced this timeline, if known.
    fn range_hint_m(&self) -> Option<f64> {
        None
    }

    /// The source's original identifier for `node`, if it has one.
    ///
    /// Imported real-world corpora carry device identifiers (sparse
    /// numeric ids, Bluetooth MACs) that were remapped to dense indices
    /// at ingestion; trace-backed sources surface the original id here
    /// so reports can name real devices. Geometric sources have no
    /// external identity and return `None`.
    fn node_label(&self, node: usize) -> Option<&str> {
        let _ = node;
        None
    }
}

/// Every geometric contact source is an encounter source: the adapter
/// that lets `World` and `GridContactEngine` drive the same
/// encounter-level evaluation path as replayed traces.
impl<C: ContactSource> EncounterSource for C {
    fn node_count(&self) -> usize {
        ContactSource::node_count(self)
    }

    fn encounter_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent> {
        self.contact_events(start, end)
    }

    fn node_position(&self, node: usize, t: SimTime) -> Option<Point> {
        Some(self.position(node, t))
    }

    fn range_hint_m(&self) -> Option<f64> {
        Some(self.range_m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::trace::Trajectory;
    use crate::time::SimDuration;
    use crate::world::World;

    fn two_node_world() -> World {
        World::new(
            vec![
                Trajectory::stationary(Point::new(0.0, 0.0)),
                Trajectory::stationary(Point::new(30.0, 0.0)),
            ],
            60.0,
            SimDuration::from_secs(30),
        )
    }

    #[test]
    fn world_adapts_onto_encounter_source() {
        let w = two_node_world();
        let end = SimTime::from_hours(1);
        assert_eq!(EncounterSource::node_count(&w), 2);
        assert_eq!(
            w.encounter_events(SimTime::ZERO, end),
            w.contact_events(SimTime::ZERO, end)
        );
        assert_eq!(
            w.encounter_intervals(SimTime::ZERO, end),
            w.contact_intervals(SimTime::ZERO, end)
        );
        assert_eq!(w.range_hint_m(), Some(60.0));
        assert_eq!(
            w.node_position(1, SimTime::ZERO),
            Some(Point::new(30.0, 0.0))
        );
    }

    #[test]
    fn generic_consumers_accept_both_views() {
        fn count_events<S: EncounterSource>(s: &S, end: SimTime) -> usize {
            s.encounter_events(SimTime::ZERO, end).len()
        }
        let w = two_node_world();
        assert_eq!(count_events(&w, SimTime::from_hours(1)), 1);
    }
}
