//! # sos-sim
//!
//! Deterministic simulation substrate for the SOS middleware
//! reproduction.
//!
//! The paper evaluates SOS *in vivo*: ten people carrying iPhones around
//! an ~11 km × 8 km area of Gainesville, FL for a week. This crate
//! replaces the people with a seeded, deterministic substrate:
//!
//! * [`time`] — millisecond-resolution simulated clock types
//! * [`event`] — a generic discrete-event queue
//! * [`encounter`] — the [`EncounterSource`] timeline abstraction that
//!   decouples scheme evaluation from geometry (implemented by every
//!   geometric [`ContactSource`] and by `sos-trace` replay sources)
//! * [`error`] — typed substrate errors ([`SimError`]): malformed
//!   external inputs surface as errors, never panics
//! * [`geo`] — a metric plane and distances
//! * [`mobility`] — trajectory generation: random waypoint, a
//!   home/campus/errand daily-schedule model with nightly sleep (the paper
//!   notes nodes are stationary 5–8 h/day), a districts+transit
//!   metropolis that scales the schedule model to city populations, and
//!   struct-of-arrays trajectory storage for million-node worlds
//! * [`radio`] — the three Multipeer Connectivity bearers and their
//!   ranges (Bluetooth, peer-to-peer WiFi, infrastructure WiFi)
//! * [`world`] — pairwise contact detection over sampled trajectories
//! * [`metrics`] — CDFs, delay and delivery-ratio recorders matching the
//!   paper's Figs. 4c and 4d
//!
//! Everything is a pure function of `(configuration, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encounter;
pub mod error;
pub mod event;
pub mod geo;
pub mod metrics;
pub mod mobility;
pub mod radio;
pub mod time;
pub mod world;

pub use encounter::EncounterSource;
pub use error::SimError;
pub use event::EventQueue;
pub use geo::Point;
pub use metrics::{Cdf, DelayRecorder, DeliveryRecorder};
pub use radio::RadioTech;
pub use time::{SimDuration, SimTime};
pub use world::{ContactEvent, ContactInterval, ContactPhase, ContactSource, World};

#[cfg(test)]
mod proptests {
    use crate::geo::{Bounds, Point};
    use crate::metrics::Cdf;
    use crate::mobility::trace::Trajectory;
    use crate::time::{SimDuration, SimTime};
    use crate::world::{ContactPhase, World};
    use proptest::prelude::*;

    fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
        prop::collection::vec((0u64..10_000, 0.0f64..5_000.0, 0.0f64..5_000.0), 1..12).prop_map(
            |mut raw| {
                raw.sort_by_key(|(t, _, _)| *t);
                Trajectory::new(
                    raw.into_iter()
                        .map(|(t, x, y)| (SimTime::from_secs(t), Point::new(x, y)))
                        .collect(),
                )
                .expect("sorted non-empty waypoints")
            },
        )
    }

    proptest! {
        /// Sampled positions never leave the convex hull's bounding box.
        #[test]
        fn trajectory_stays_in_waypoint_bbox(tr in arb_trajectory(), t in 0u64..20_000) {
            let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, p) in tr.waypoints() {
                min_x = min_x.min(p.x); max_x = max_x.max(p.x);
                min_y = min_y.min(p.y); max_y = max_y.max(p.y);
            }
            let pos = tr.position_at(SimTime::from_secs(t));
            prop_assert!(pos.x >= min_x - 1e-9 && pos.x <= max_x + 1e-9);
            prop_assert!(pos.y >= min_y - 1e-9 && pos.y <= max_y + 1e-9);
        }

        /// Per pair, contact events strictly alternate Up/Down starting
        /// with Up.
        #[test]
        fn contact_events_alternate(tra in arb_trajectory(), trb in arb_trajectory()) {
            let world = World::new(vec![tra, trb], 60.0, SimDuration::from_secs(30));
            let events = world.contact_events(SimTime::ZERO, SimTime::from_secs(20_000));
            let mut up = false;
            for ev in events {
                match ev.phase {
                    ContactPhase::Up => {
                        prop_assert!(!up, "double up");
                        up = true;
                    }
                    ContactPhase::Down => {
                        prop_assert!(up, "down without up");
                        up = false;
                    }
                }
            }
        }

        /// Contact intervals are disjoint and ordered per pair.
        #[test]
        fn contact_intervals_disjoint(tra in arb_trajectory(), trb in arb_trajectory()) {
            let world = World::new(vec![tra, trb], 60.0, SimDuration::from_secs(30));
            let ivs = world.contact_intervals(SimTime::ZERO, SimTime::from_secs(20_000));
            for w in ivs.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "overlapping intervals");
            }
        }

        /// CDF invariants: monotone, bounded, quantiles within range.
        #[test]
        fn cdf_invariants(samples in prop::collection::vec(0.0f64..1e6, 1..200),
                          q in 0.0f64..=1.0) {
            let cdf = Cdf::from_samples(samples.clone());
            let min = cdf.min().unwrap();
            let max = cdf.max().unwrap();
            let v = cdf.quantile(q);
            prop_assert!(v >= min && v <= max);
            prop_assert!(cdf.fraction_le(min - 1.0) == 0.0);
            prop_assert!((cdf.fraction_le(max) - 1.0).abs() < 1e-12);
            let mid = (min + max) / 2.0;
            prop_assert!(cdf.fraction_le(mid) <= cdf.fraction_le(max));
        }

        /// Bounds sampling and clamping agree.
        #[test]
        fn bounds_clamp_idempotent(x in -1e4f64..2e4, y in -1e4f64..2e4) {
            let b = Bounds::new(5_000.0, 3_000.0);
            let clamped = b.clamp(Point::new(x, y));
            prop_assert!(b.contains(&clamped));
            prop_assert_eq!(b.clamp(clamped), clamped);
        }
    }
}
