//! `sos-lint` — workspace static analysis that enforces the invariants
//! this repository keeps re-learning by bug.
//!
//! Every rule is motivated by a bug class that has already been fixed
//! once (see README "Static analysis" for the per-rule rationale and
//! the PR that motivated it):
//!
//! | rule | invariant |
//! |---|---|
//! | `no-panic` | decode/forward paths in the protocol crates return errors, never abort |
//! | `no-wallclock` | only sos-obs/sos-bench read the wall clock — replay stays deterministic |
//! | `no-hash-order` | hash-iteration order never feeds frames, codecs, or reports |
//! | `no-narrow-cast` | wire/time-derived values are never silently narrowed or float-truncated |
//! | `no-unbounded-prealloc` | no allocation sized by a wire-read length without a visible cap |
//!
//! The engine is a real (small) Rust lexer plus token-stream rules, so
//! comments, doc examples, and string literals can never produce
//! findings, and `#[cfg(test)]` regions and `tests/`/`benches/`/
//! `examples/` trees are exempt. Suppressions must carry a reason:
//!
//! ```text
//! // sos-lint: allow(no-panic) reason="mutex poisoning recovered below"
//! ```
//!
//! Run it as a binary (`cargo run -p sos-lint -- [--json] [ROOT]`), or
//! from tests via [`engine::lint_workspace`] — the root test
//! `tests/lint_clean.rs` keeps the live workspace clean in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::Config;
pub use engine::{lint_source, lint_workspace, LintReport};
pub use rules::Finding;
