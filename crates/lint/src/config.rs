//! Rule scoping: which crates and files each rule applies to.
//!
//! The defaults encode this repository's layout and bug history; they
//! are data, not code, so a future crate only needs a line here (and
//! the README table) to opt in.

/// Scoping configuration for a lint run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates whose production code must be panic-free (`no-panic`).
    /// Short names: the `<name>` of `crates/<name>`, or `"root"` for
    /// the umbrella crate's own `src/`.
    pub panic_crates: Vec<String>,
    /// Crates allowed to read the wall clock (`no-wallclock` skips
    /// them): observability and benchmarking by design.
    pub wallclock_exempt_crates: Vec<String>,
    /// Path substrings of files whose output must be deterministic
    /// (`no-hash-order`): wire encoders and report/journal renderers.
    pub ordered_output_files: Vec<String>,
    /// Path substrings of wire codec / corpus adapter files
    /// (`no-narrow-cast` + `no-unbounded-prealloc`).
    pub wire_files: Vec<String>,
}

impl Config {
    /// The scoping for this workspace (see README "Static analysis").
    pub fn sos_defaults() -> Config {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect();
        Config {
            // The protocol crates (R1 motivation: PR 4 made malformed
            // trace ingestion return errors; nothing must regress it),
            // the experiment harness that CI smoke-runs, and sos-lint
            // itself (the gate must not be able to take CI down).
            // node joins: its runtime and transports sit on the live
            // frame path (arbitrary socket bytes in vivo), so decode
            // and forward must return errors, never abort.
            panic_crates: s(&[
                "core",
                "net",
                "trace",
                "crypto",
                "experiments",
                "lint",
                "node",
            ]),
            // sos-obs owns the span profiler, sos-bench owns timing.
            wallclock_exempt_crates: s(&["obs", "bench"]),
            // Frame/bundle encoders, trace codecs + the recorder that
            // feeds them, everything that renders RUN-REPORTs or
            // BENCH-JSON, and the sharded kernel's stream merge (its
            // output must be byte-identical to the single loop, so
            // hash-iteration order must never reach it).
            ordered_output_files: s(&[
                "/codec_",
                "/frame.rs",
                "/message.rs",
                "/sync.rs",
                "/advertisement.rs",
                "/record.rs",
                "/report.rs",
                "/journal.rs",
                "/emit.rs",
                "/shard.rs",
                // The in-vivo control protocol renders report lines
                // (stats / delivered / journal) that cross-process
                // comparisons diff verbatim.
                "/proto.rs",
            ]),
            // Everything that parses or emits wire bytes or imports
            // foreign corpora (R4/R5 motivation: the PR 5 `as u64`
            // saturation and hostile-length allocation classes).
            wire_files: s(&[
                "/codec_",
                "/corpora/",
                "/frame.rs",
                "/message.rs",
                "/sync.rs",
                "/handshake.rs",
                "/session.rs",
                "/advertisement.rs",
                // The length-prefixed socket framing and the broker⇄
                // daemon control codec parse bytes straight off TCP.
                "/wire.rs",
                "/proto.rs",
            ]),
        }
    }

    /// True when `rel_path` matches any pattern in `pats`.
    pub(crate) fn path_matches(rel_path: &str, pats: &[String]) -> bool {
        // Normalize so patterns anchored at a path component (`/x.rs`)
        // also match a file at the scan root.
        let slashed = format!("/{rel_path}");
        pats.iter().any(|p| slashed.contains(p.as_str()))
    }
}
