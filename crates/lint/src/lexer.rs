//! A small, honest Rust lexer.
//!
//! `sos-lint` rules operate on a token stream, never on raw text, so a
//! `panic!` inside a string literal, a `.unwrap()` in a doc comment, or
//! an `Instant::now` in `//` prose can never produce a finding. The
//! lexer handles the parts of the Rust grammar that trip up grep-style
//! tools:
//!
//! - line comments (`//`, `///`, `//!`),
//! - **nested** block comments (`/* a /* b */ c */`),
//! - string literals with escapes (`"\""`),
//! - raw strings with arbitrary hash fences (`r#"..."#`, `br##"..."##`),
//! - byte strings and byte literals,
//! - char literals vs. lifetimes (`'a'` vs `'a`),
//! - numeric literals with underscores and suffixes.
//!
//! It does not attempt full fidelity (no float-vs-range disambiguation,
//! no `r#ident` raw identifiers beyond stripping the prefix); rules only
//! need identifier, punctuation, literal, and comment classification
//! with line numbers.

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `as`, `mod`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`). Distinguished from char literals.
    Lifetime,
    /// A numeric literal (`0x7f`, `1_000u64`, `2.5`).
    Number,
    /// Any string-ish literal: `"..."`, `r#"..."#`, `b"..."`, `br"..."`.
    Str,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A `//` comment, doc or not. Text includes the slashes.
    LineComment,
    /// A `/* ... */` comment (nested fences handled). Text included.
    BlockComment,
    /// A single punctuation byte (`.`, `(`, `!`, `[`, ...).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok<'a> {
    /// Classification.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl<'a> Tok<'a> {
    fn new(kind: TokKind, text: &'a str, line: u32) -> Tok<'a> {
        Tok { kind, text, line }
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// or comments are closed at end of input (the lint must degrade
/// gracefully on code that rustc itself would reject).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    self.push(TokKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    self.push(TokKind::BlockComment, start, line);
                }
                b'"' => {
                    self.pos += 1;
                    self.take_quoted_tail();
                    self.push(TokKind::Str, start, line);
                }
                b'r' | b'b' if self.starts_raw_or_byte_string() => {
                    self.take_raw_or_byte_string();
                    self.push(TokKind::Str, start, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 2;
                    self.take_char_tail();
                    self.push(TokKind::Char, start, line);
                }
                b'\'' => {
                    if self.is_char_literal() {
                        self.pos += 1;
                        self.take_char_tail();
                        self.push(TokKind::Char, start, line);
                    } else {
                        // Lifetime: `'` + ident chars.
                        self.pos += 1;
                        self.take_ident_tail();
                        self.push(TokKind::Lifetime, start, line);
                    }
                }
                b'0'..=b'9' => {
                    self.take_number();
                    self.push(TokKind::Number, start, line);
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.take_ident_tail();
                    self.push(TokKind::Ident, start, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out
            .push(Tok::new(kind, &self.src[start..self.pos], line));
    }

    fn bump_line_counting(&mut self, upto: usize) {
        while self.pos < upto {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn take_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn take_block_comment(&mut self) {
        // Nested fences: `/* /* */ */` is one comment.
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    /// After the opening `"`: consume through the closing quote,
    /// honouring `\"` and `\\` escapes.
    fn take_quoted_tail(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // A `\` + newline is a line continuation: the
                    // escaped byte still advances the line counter.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// True when the cursor starts `r"`, `r#`, `br"`, `br#`, or `b"`.
    fn starts_raw_or_byte_string(&self) -> bool {
        let b0 = self.bytes[self.pos];
        let (mut i, mut saw_r) = (1usize, b0 == b'r');
        if b0 == b'b' {
            match self.peek(1) {
                Some(b'r') => {
                    i = 2;
                    saw_r = true;
                }
                Some(b'"') => return true, // b"..."
                _ => return false,
            }
        }
        if !saw_r {
            return false;
        }
        // After `r` / `br`: any number of `#` then `"`.
        loop {
            match self.peek(i) {
                Some(b'#') => i += 1,
                Some(b'"') => return true,
                _ => return false,
            }
        }
    }

    fn take_raw_or_byte_string(&mut self) {
        // Skip the `b` and/or `r` prefix.
        if self.bytes[self.pos] == b'b' {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'r') {
            self.pos += 1;
            // Count the hash fence.
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.pos += 1;
            }
            // Opening quote.
            if self.peek(0) == Some(b'"') {
                self.pos += 1;
            }
            // Raw strings have no escapes: scan for `"` + hashes fence.
            'scan: while self.pos < self.bytes.len() {
                if self.bytes[self.pos] == b'"' {
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            if self.bytes[self.pos] == b'\n' {
                                self.line += 1;
                            }
                            self.pos += 1;
                            continue 'scan;
                        }
                    }
                    self.pos += 1 + hashes;
                    return;
                }
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        } else {
            // Plain byte string b"...": same escape rules as "...".
            if self.peek(0) == Some(b'"') {
                self.pos += 1;
            }
            self.take_quoted_tail();
        }
    }

    /// Distinguishes `'x'` / `'\n'` / `'\u{1F600}'` (char literal) from
    /// `'a` / `'static` (lifetime). A quote at `pos`; a char literal has
    /// a closing quote after one escaped or plain character.
    fn is_char_literal(&self) -> bool {
        match self.peek(1) {
            Some(b'\\') => true, // escape: always a char literal
            Some(b'\'') => false,
            Some(_) => {
                // `'X?` — char literal iff the char after X is `'`.
                // Multi-byte UTF-8 chars: find the end of one char.
                let rest = &self.src[self.pos + 1..];
                match rest.chars().next() {
                    Some(c) => rest[c.len_utf8()..].starts_with('\''),
                    None => false,
                }
            }
            None => false,
        }
    }

    /// After the opening `'`: consume through the closing quote.
    fn take_char_tail(&mut self) {
        if self.peek(0) == Some(b'\\') {
            self.pos += 2; // skip the escape introducer + escaped byte
                           // `\u{...}` escapes: consume to the closing brace.
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'\''
                && self.bytes[self.pos] != b'\n'
            {
                self.pos += 1;
            }
            if self.peek(0) == Some(b'\'') {
                self.pos += 1;
            }
            return;
        }
        let rest = &self.src[self.pos..];
        if let Some(c) = rest.chars().next() {
            self.pos += c.len_utf8();
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    fn take_ident_tail(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn take_number(&mut self) {
        let end = self.pos;
        let mut end = end;
        let bytes = self.bytes;
        // Integer/float body: digits, underscores, radix letters, one
        // dot (only when followed by a digit — `0..n` is a range, and
        // `x.min()` after a number like `7.min(2)` stays punctuation).
        let mut seen_dot = false;
        end += 1;
        while end < bytes.len() {
            let b = bytes[end];
            if b == b'_' || b.is_ascii_alphanumeric() {
                end += 1;
            } else if b == b'.'
                && !seen_dot
                && bytes.get(end + 1).is_some_and(|d| d.is_ascii_digit())
            {
                seen_dot = true;
                end += 1;
            } else {
                break;
            }
        }
        self.bump_line_counting(end);
    }
}
