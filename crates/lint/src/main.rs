//! The `sos-lint` binary: lints a workspace tree and exits non-zero on
//! findings (CI gate). Usage: `sos-lint [--json] [ROOT]`.

#![forbid(unsafe_code)]

use sos_lint::{config::Config, engine, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: sos-lint [--json] [ROOT]");
                println!("Lints the workspace at ROOT (default: .) against the SOS rules;");
                println!("exits 1 when findings remain, 2 on I/O failure.");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("sos-lint: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let cfg = Config::sos_defaults();
    match engine::lint_workspace(&root, &cfg) {
        Ok(rep) => {
            if json {
                print!("{}", report::render_json(&rep));
            } else {
                print!("{}", report::render_text(&rep));
            }
            if rep.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("sos-lint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
