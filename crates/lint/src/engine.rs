//! The lint engine: walks the workspace, classifies files and
//! `#[cfg(test)]` regions, runs the rules, and applies the allow
//! protocol.
//!
//! ## The allow protocol
//!
//! Every suppression must carry a reason:
//!
//! ```text
//! // sos-lint: allow(no-panic) reason="poisoning recovered via into_inner"
//! some.call().unwrap();
//! ```
//!
//! The comment covers the **next source line** (or its own line when it
//! trails code). Multiple rules separate with commas. A malformed
//! annotation (missing reason, unknown rule) and an annotation that
//! suppresses nothing are themselves findings — allows cannot rot
//! silently.

use crate::config::Config;
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{self, FileCtx, Finding, ALL_RULES, RULE_ALLOW};
use std::path::{Path, PathBuf};

/// One parsed `sos-lint: allow(...)` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Path relative to the scan root.
    pub file: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Source line the annotation covers.
    pub target_line: u32,
    /// Rule ids being allowed.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// Findings this annotation suppressed (filled during linting).
    pub suppressed: u32,
}

/// Result of linting one file or a whole tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every allow annotation seen, with use counts.
    pub allows: Vec<Allow>,
    /// Production files linted.
    pub files_linted: usize,
    /// Files classified as test/bench/example support and skipped.
    pub files_skipped: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.allows.extend(other.allows);
        self.files_linted += other.files_linted;
        self.files_skipped += other.files_skipped;
    }

    fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }
}

/// Lints every production `.rs` file under `root` (skipping `vendor/`,
/// `target/`, hidden directories, and test/bench/example trees).
///
/// # Errors
///
/// Propagates I/O errors from the directory walk; unreadable individual
/// files are reported as findings rather than aborting the run.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort(); // deterministic report order regardless of OS walk order
    let mut report = LintReport::default();
    for rel in files {
        if is_test_support_path(&rel) {
            report.files_skipped += 1;
            continue;
        }
        let abs = root.join(&rel);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(&abs) {
            Ok(src) => report.merge(lint_source(&rel_str, &src, cfg)),
            Err(e) => report.findings.push(Finding {
                rule: RULE_ALLOW,
                file: rel_str,
                line: 0,
                message: format!("unreadable source file: {e}"),
                excerpt: String::new(),
            }),
        }
    }
    report.sort();
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// True for files that are test/bench/example support rather than
/// production code (whole-file exemption).
fn is_test_support_path(rel: &Path) -> bool {
    rel.components().any(|c| {
        let c = c.as_os_str().to_string_lossy();
        c == "tests" || c == "benches" || c == "examples" || c == "fixtures"
    }) || rel.file_name().is_some_and(|f| f == "build.rs")
}

/// The short crate name for a workspace-relative path: `crates/net/...`
/// → `net`; the umbrella crate's own `src/` → `root`.
fn crate_name(rel_path: &str) -> &str {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("root")
    } else {
        "root"
    }
}

/// Lints a single file's source text. `rel_path` drives crate and file
/// scoping exactly as in a workspace run, which is what lets fixture
/// tests exercise the rules without touching the filesystem.
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> LintReport {
    let toks = lexer::lex(src);
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment)
        .map(|(i, _)| i)
        .collect();
    let lines: Vec<&str> = src.lines().collect();
    let test_ranges = test_ranges(&toks, &code);
    let ctx = FileCtx {
        rel_path,
        crate_name: crate_name(rel_path),
        toks: &toks,
        code: &code,
        lines: &lines,
        test_ranges: &test_ranges,
    };
    let raw = rules::run_rules(&ctx, cfg);

    let (mut allows, mut findings) = parse_allows(rel_path, &toks, &code, &lines);
    // Suppression: a finding is covered when an allow targets its line
    // and names its rule.
    for f in raw {
        let covered = allows
            .iter_mut()
            .find(|a| a.target_line == f.line && a.rules.iter().any(|r| r == f.rule));
        match covered {
            Some(a) => a.suppressed += 1,
            None => findings.push(f),
        }
    }
    // An allow that suppressed nothing is dead weight — flag it so
    // stale annotations get cleaned up when the code they excused
    // improves.
    for a in &allows {
        if a.suppressed == 0 {
            findings.push(Finding {
                rule: RULE_ALLOW,
                file: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "allow({}) suppresses nothing — remove the stale annotation",
                    a.rules.join(",")
                ),
                excerpt: lines
                    .get(a.line as usize - 1)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
    LintReport {
        findings,
        allows,
        files_linted: 1,
        files_skipped: 0,
    }
}

/// Extracts `sos-lint:` annotations from the comment tokens. Returns
/// the parsed allows plus findings for malformed ones.
fn parse_allows(
    rel_path: &str,
    toks: &[Tok<'_>],
    code: &[usize],
    lines: &[&str],
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        // Annotations live in plain comments only: doc comments
        // (`///`, `//!`, `/**`, `/*!`) are prose and may *mention* the
        // syntax without engaging it.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("sos-lint:") else {
            continue;
        };
        let body = t.text[at + "sos-lint:".len()..].trim();
        let malformed = |msg: &str| Finding {
            rule: RULE_ALLOW,
            file: rel_path.to_string(),
            line: t.line,
            message: format!("malformed sos-lint annotation: {msg}"),
            excerpt: lines
                .get(t.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            findings.push(malformed("expected `allow(<rule>) reason=\"...\"`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(malformed("unclosed allow(...)"));
            continue;
        };
        let rule_list: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rule_list.is_empty() {
            findings.push(malformed("allow() names no rules"));
            continue;
        }
        if let Some(bad) = rule_list.iter().find(|r| !ALL_RULES.contains(&r.as_str())) {
            findings.push(malformed(&format!(
                "unknown rule {bad:?} (known: {})",
                ALL_RULES.join(", ")
            )));
            continue;
        }
        let after = rest[close + 1..].trim();
        let reason = after
            .strip_prefix("reason=")
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.split('"').next())
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(malformed("missing or empty reason=\"...\""));
            continue;
        }
        // Target: the comment's own line when it trails code, else the
        // next line holding a code token.
        let trails_code = code
            .iter()
            .take_while(|&&ci| ci < i)
            .any(|&ci| toks[ci].line == t.line);
        let target_line = if trails_code {
            t.line
        } else {
            code.iter()
                .map(|&ci| &toks[ci])
                .find(|c| c.line > t.line)
                .map(|c| c.line)
                .unwrap_or(t.line)
        };
        allows.push(Allow {
            file: rel_path.to_string(),
            line: t.line,
            target_line,
            rules: rule_list,
            reason: reason.to_string(),
            suppressed: 0,
        });
    }
    (allows, findings)
}

/// Line ranges covered by `#[cfg(test)]` (and `#[test]`/`#[bench]`)
/// items: from the attribute to the item's closing brace (or `;`).
fn test_ranges(toks: &[Tok<'_>], code: &[usize]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let tok = |k: usize| -> Option<&Tok<'_>> { code.get(k).map(|&ci| &toks[ci]) };
    let mut i = 0usize;
    while i < code.len() {
        if !(tok(i).is_some_and(|t| t.text == "#") && tok(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute to its matching `]`, collecting idents.
        let attr_line = tok(i).map(|t| t.line).unwrap_or(1);
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut j = i + 1;
        while let Some(t) = tok(j) {
            match (t.kind, t.text) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, name) => idents.push(name),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
            Some(&"test") | Some(&"bench") => idents.len() == 1,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // The attributed item: skip further attributes, then run to the
        // matching close brace (or a top-level `;` for `use`/`mod x;`).
        let mut k = j + 1;
        while tok(k).is_some_and(|t| t.text == "#") && tok(k + 1).is_some_and(|t| t.text == "[") {
            let mut d = 0usize;
            while let Some(t) = tok(k) {
                if t.text == "[" {
                    d += 1;
                } else if t.text == "]" {
                    d = d.saturating_sub(1);
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = 0usize;
        let mut end_line = attr_line;
        while let Some(t) = tok(k) {
            end_line = t.line;
            match t.text {
                "{" => brace += 1,
                "}" => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        break;
                    }
                }
                ";" if brace == 0 => break,
                _ => {}
            }
            k += 1;
        }
        ranges.push((attr_line, end_line));
        i = k + 1;
    }
    ranges
}
