//! Rendering: a human-readable table and a machine-readable JSON
//! document (hand-rolled — `sos-lint` has zero dependencies, like the
//! rest of the workspace).

use crate::engine::LintReport;
use crate::rules::ALL_RULES;
use std::fmt::Write as _;

/// Renders the human table: findings, allows in effect, and a per-rule
/// summary. Stable, sorted output (itself subject to the repo's
/// determinism discipline).
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sos-lint: {} file(s) linted, {} test/bench/example file(s) exempt",
        report.files_linted, report.files_skipped
    );
    if report.findings.is_empty() {
        let _ = writeln!(out, "sos-lint: clean");
    } else {
        let _ = writeln!(out, "sos-lint: {} finding(s)", report.findings.len());
        let loc_w = report
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + digits(f.line))
            .max()
            .unwrap_or(8)
            .max(8);
        for f in &report.findings {
            let loc = format!("{}:{}", f.file, f.line);
            let _ = writeln!(out, "  {:<22} {loc:<loc_w$}  {}", f.rule, f.message);
            if !f.excerpt.is_empty() {
                let _ = writeln!(out, "  {:<22} {:<loc_w$}  > {}", "", "", f.excerpt);
            }
        }
    }
    if !report.allows.is_empty() {
        let _ = writeln!(out, "allows in effect: {}", report.allows.len());
        for a in &report.allows {
            let _ = writeln!(
                out,
                "  {:<22} {}:{}  ({} finding(s)) reason=\"{}\"",
                a.rules.join(","),
                a.file,
                a.line,
                a.suppressed,
                a.reason
            );
        }
    }
    let _ = writeln!(out, "per-rule totals (findings / allowed):");
    for rule in ALL_RULES {
        let fired = report.findings.iter().filter(|f| f.rule == rule).count();
        let allowed: u32 = report
            .allows
            .iter()
            .filter(|a| a.rules.iter().any(|r| r == rule))
            .map(|a| a.suppressed)
            .sum();
        let _ = writeln!(out, "  {rule:<22} {fired} / {allowed}");
    }
    out
}

/// Renders the JSON document: `{"clean": bool, "files_linted": n,
/// "findings": [...], "allows": [...]}`.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"clean\": {},\n  \"files_linted\": {},\n  \"files_skipped\": {},\n",
        report.is_clean(),
        report.files_linted,
        report.files_skipped
    );
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {}}}",
            if i == 0 { "" } else { "," },
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(&f.excerpt)
        );
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"allows\": [");
    for (i, a) in report.allows.iter().enumerate() {
        let rules: Vec<String> = a.rules.iter().map(|r| json_str(r)).collect();
        let _ = write!(
            out,
            "{}\n    {{\"rules\": [{}], \"file\": {}, \"line\": {}, \"suppressed\": {}, \"reason\": {}}}",
            if i == 0 { "" } else { "," },
            rules.join(", "),
            json_str(&a.file),
            a.line,
            a.suppressed,
            json_str(&a.reason)
        );
    }
    out.push_str(if report.allows.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Minimal JSON string escaping (quotes, backslash, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
