//! The rules. Each is grounded in a bug class this repository has
//! already paid for; the README "Static analysis" section carries the
//! full rationale and the PR that motivated each rule.

use crate::config::Config;
use crate::lexer::{Tok, TokKind};

/// Stable rule identifiers (also the names used in `allow(...)`).
pub const RULE_NO_PANIC: &str = "no-panic";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_WALLCLOCK: &str = "no-wallclock";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_HASH_ORDER: &str = "no-hash-order";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_NARROW_CAST: &str = "no-narrow-cast";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_UNBOUNDED_PREALLOC: &str = "no-unbounded-prealloc";
/// Meta-rule for malformed or unused `sos-lint: allow(...)` comments.
pub const RULE_ALLOW: &str = "allow";

/// Every real (allowable) rule id, in report order.
pub const ALL_RULES: [&str; 5] = [
    RULE_NO_PANIC,
    RULE_NO_WALLCLOCK,
    RULE_NO_HASH_ORDER,
    RULE_NO_NARROW_CAST,
    RULE_NO_UNBOUNDED_PREALLOC,
];

/// One rule violation, before allow-suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`ALL_RULES`] or [`RULE_ALLOW`]).
    pub rule: &'static str,
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human explanation with the fix direction.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// Everything the rules need to know about one production file.
pub struct FileCtx<'a> {
    /// Path relative to the scan root.
    pub rel_path: &'a str,
    /// Short crate name (`core`, `net`, ..., or `root`).
    pub crate_name: &'a str,
    /// Full token stream, comments included.
    pub toks: &'a [Tok<'a>],
    /// Indices into `toks` of non-comment tokens.
    pub code: &'a [usize],
    /// Source split into lines (for excerpts).
    pub lines: &'a [&'a str],
    /// Line ranges (inclusive) belonging to `#[cfg(test)]` / `#[test]`
    /// items.
    pub test_ranges: &'a [(u32, u32)],
}

impl FileCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            message,
            excerpt: self.excerpt(line),
        }
    }

    /// The code token at `code[i + off]`, if any.
    fn code_tok(&self, i: usize, off: isize) -> Option<&Tok<'_>> {
        let j = i.checked_add_signed(off)?;
        Some(&self.toks[*self.code.get(j)?])
    }
}

/// Runs every applicable rule over one file.
pub fn run_rules(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.panic_crates.iter().any(|c| c == ctx.crate_name) {
        no_panic(ctx, &mut out);
    }
    if !cfg
        .wallclock_exempt_crates
        .iter()
        .any(|c| c == ctx.crate_name)
    {
        no_wallclock(ctx, &mut out);
    }
    if Config::path_matches(ctx.rel_path, &cfg.ordered_output_files) {
        no_hash_order(ctx, &mut out);
    }
    if Config::path_matches(ctx.rel_path, &cfg.wire_files) {
        no_narrow_cast(ctx, &mut out);
        no_unbounded_prealloc(ctx, &mut out);
    }
    out
}

/// R1 — decode/forward paths must return errors, not abort the process.
/// Motivated by PR 4 (panicking trace ingestion on malformed input).
fn no_panic(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    for (i, &ti) in ctx.code.iter().enumerate() {
        let t = &ctx.toks[ti];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let prev_dot = ctx.code_tok(i, -1).is_some_and(|p| p.text == ".");
        let next = ctx.code_tok(i, 1).map(|n| n.text);
        if (t.text == "unwrap" || t.text == "expect") && prev_dot && next == Some("(") {
            out.push(ctx.finding(
                RULE_NO_PANIC,
                t.line,
                format!(
                    "`.{}()` in production code of sos-{} — return the crate error type instead",
                    t.text, ctx.crate_name
                ),
            ));
        } else if PANIC_MACROS.contains(&t.text) && next == Some("!") {
            out.push(ctx.finding(
                RULE_NO_PANIC,
                t.line,
                format!(
                    "`{}!` in production code of sos-{} — return the crate error type instead",
                    t.text, ctx.crate_name
                ),
            ));
        }
    }
}

/// R2 — replay determinism: wall-clock reads outside sos-obs/sos-bench
/// would make record→replay byte-identity unreproducible.
fn no_wallclock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (i, &ti) in ctx.code.iter().enumerate() {
        let t = &ctx.toks[ti];
        if t.kind != TokKind::Ident
            || (t.text != "Instant" && t.text != "SystemTime")
            || ctx.in_test(t.line)
        {
            continue;
        }
        let sep = ctx.code_tok(i, 1).map(|n| n.text) == Some(":")
            && ctx.code_tok(i, 2).map(|n| n.text) == Some(":");
        let is_now = ctx.code_tok(i, 3).map(|n| n.text) == Some("now");
        if sep && is_now {
            out.push(ctx.finding(
                RULE_NO_WALLCLOCK,
                t.line,
                format!(
                    "`{}::now` outside sos-obs/sos-bench — wall-clock reads break \
                     deterministic replay; take time from SimTime/the timeline",
                    t.text
                ),
            ));
        }
    }
}

/// R3 — hash-iteration order must never feed frames or reports: two
/// runs of the same timeline would emit different bytes.
fn no_hash_order(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for &ti in ctx.code {
        let t = &ctx.toks[ti];
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.line)
        {
            out.push(ctx.finding(
                RULE_NO_HASH_ORDER,
                t.line,
                format!(
                    "`{}` in an ordered-output file — iteration order leaks into \
                     encoded frames/reports; use BTreeMap/BTreeSet or sort explicitly",
                    t.text
                ),
            ));
        }
    }
}

/// Width in bits of an integer type name, or `None` when not an
/// integer type. `usize`/`isize` are treated as 64-bit: the repo
/// targets 64-bit hosts (revisit before any 32-bit port).
fn int_width(name: &str) -> Option<u32> {
    Some(match name {
        "u8" | "i8" => 8,
        "u16" | "i16" => 16,
        "u32" | "i32" => 32,
        "u64" | "i64" | "usize" | "isize" => 64,
        "u128" | "i128" => 128,
        _ => return None,
    })
}

/// Calls whose result has a known width when they appear in a cast
/// operand (wire reads, lengths, and time extractors).
fn source_width(name: &str) -> Option<u32> {
    Some(match name {
        "get_u8" => 8,
        "get_u16_le" | "u16" => 16,
        "get_u32_le" | "u32" | "bits" => 32,
        "get_u64_le" | "u64" | "get_varint" | "len" | "wire_size" | "capacity" | "as_millis"
        | "as_secs" => 64,
        _ => return None,
    })
}

/// R4 — the PR 5 saturation class: a cast on a wire- or time-derived
/// value that silently narrows (or truncates a float) corrupts frames
/// instead of erroring. Heuristic: the rule inspects the cast's own
/// source line for reads of known width (`get_varint`, `.len()`,
/// `uNN::from_le_bytes`, cursor `.u16()`...) and float producers
/// (`.round()`, `f64`); cross-line dataflow is out of scope — the
/// `clippy.toml` gate and code review carry the rest.
fn no_narrow_cast(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (i, &ti) in ctx.code.iter().enumerate() {
        let t = &ctx.toks[ti];
        if t.kind != TokKind::Ident || t.text != "as" || ctx.in_test(t.line) {
            continue;
        }
        let Some(target) = ctx.code_tok(i, 1) else {
            continue;
        };
        let Some(target_width) = int_width(target.text) else {
            continue;
        };
        // Operand heuristic: code tokens on the same physical line
        // before the `as`.
        let mut max_src_width = 0u32;
        let mut float_src = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let Some(p) = ctx.code_tok(j, 0) else { break };
            if p.line != t.line {
                break;
            }
            if p.kind != TokKind::Ident {
                continue;
            }
            let called = ctx.code_tok(j, 1).map(|n| n.text) == Some("(");
            match p.text {
                "round" | "trunc" | "ceil" | "floor" if called => float_src = true,
                "f64" | "f32" => float_src = true,
                "from_le_bytes" | "from_be_bytes" => {
                    // Width comes from the `uNN ::` path prefix (the
                    // `::` lexes as two `:` puncts, so 3 tokens back).
                    if let Some(w) = ctx
                        .code_tok(j, -3)
                        .and_then(|q| int_width(q.text).filter(|_| q.line == t.line))
                    {
                        max_src_width = max_src_width.max(w);
                    }
                }
                _ if called => {
                    if let Some(w) = source_width(p.text) {
                        max_src_width = max_src_width.max(w);
                    }
                }
                _ => {}
            }
        }
        if float_src {
            out.push(ctx.finding(
                RULE_NO_NARROW_CAST,
                t.line,
                format!(
                    "float → `{}` cast in a wire/adapter file truncates and saturates \
                     silently — guard the range first (see exact_millis_from_secs)",
                    target.text
                ),
            ));
        } else if max_src_width > target_width {
            out.push(ctx.finding(
                RULE_NO_NARROW_CAST,
                t.line,
                format!(
                    "cast narrows a {max_src_width}-bit wire/length value to `{}` — \
                     use a checked conversion that returns the codec's error",
                    target.text
                ),
            ));
        }
    }
}

/// R5 — the hostile-length class: preallocating from a wire-read count
/// without a visible cap lets a 5-byte header demand gigabytes.
/// An allocation passes when its argument shows a bound on the same
/// call: a `.min(...)`, a `MAX_`/`BUDGET`/`CAP` constant, a `.len()`
/// of a buffer already in memory, or literal-only arithmetic.
fn no_unbounded_prealloc(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const ALLOC_CALLS: [&str; 3] = ["with_capacity", "reserve", "resize"];
    for (i, &ti) in ctx.code.iter().enumerate() {
        let t = &ctx.toks[ti];
        if t.kind != TokKind::Ident
            || !ALLOC_CALLS.contains(&t.text)
            || ctx.in_test(t.line)
            || ctx.code_tok(i, 1).map(|n| n.text) != Some("(")
        {
            continue;
        }
        // Collect the argument tokens to the matching close paren.
        let mut depth = 0usize;
        let mut bounded = false;
        let mut literal_only = true;
        let mut j = i + 1;
        while let Some(p) = ctx.code_tok(j, 0) {
            match (p.kind, p.text) {
                (TokKind::Punct, "(") => depth += 1,
                (TokKind::Punct, ")") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, name) => {
                    literal_only = false;
                    let called = ctx.code_tok(j, 1).map(|n| n.text) == Some("(");
                    if (called && (name == "min" || name == "len" || name == "capacity"))
                        || name.starts_with("MAX_")
                        || name.contains("BUDGET")
                        || name.contains("CAP")
                    {
                        bounded = true;
                    }
                }
                (TokKind::Number, _) | (TokKind::Punct, _) => {}
                _ => literal_only = false,
            }
            j += 1;
        }
        if !bounded && !literal_only {
            out.push(ctx.finding(
                RULE_NO_UNBOUNDED_PREALLOC,
                t.line,
                format!(
                    "`{}` from a non-literal size with no visible cap in a wire/adapter \
                     file — clamp with `.min(...)` or a MAX_ constant before allocating",
                    t.text
                ),
            ));
        }
    }
}
