//! R1 bad fixture: panicking decode paths in a protocol crate.

pub fn decode(bytes: &[u8]) -> u64 {
    let first = bytes.first().unwrap();
    let arr: [u8; 8] = bytes[..8].try_into().expect("len 8");
    match *first {
        0 => panic!("zero tag"),
        1 => unreachable!("tag space is dense"),
        2 => todo!("tag 2"),
        3 => unimplemented!("tag 3"),
        _ => u64::from_le_bytes(arr),
    }
}
