//! R3 fixture: hash-keyed collections. Findings when linted under an
//! ordered-output path (e.g. `record.rs`); clean under a path with no
//! encoded output (the test lints this same source under both).

use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &k in keys {
        seen.insert(k);
        *counts.entry(k).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
