//! R4 bad fixture: unchecked narrowing and unguarded float casts in a
//! wire-format file.

pub fn encode(data: &[u8], arr: [u8; 8], secs: f64, out: &mut Vec<u8>) {
    let count = data.len() as u16;
    out.extend_from_slice(&count.to_le_bytes());
    let seq = u64::from_le_bytes(arr) as u32;
    out.extend_from_slice(&seq.to_le_bytes());
    let ms = (secs * 1000.0).round() as u64;
    out.extend_from_slice(&ms.to_le_bytes());
}
