//! R5 bad fixture: preallocation driven by a wire-read count with no
//! visible cap.

pub fn decode(arr: [u8; 8]) -> Vec<u64> {
    let count = u64::from_le_bytes(arr) as usize;
    let mut out = Vec::with_capacity(count);
    out.reserve(count);
    out.resize(count, 0);
    out
}
