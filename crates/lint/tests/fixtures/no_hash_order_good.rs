//! R3 good fixture: ordered collections are always fine, even in
//! ordered-output files.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for &k in keys {
        seen.insert(k);
        *counts.entry(k).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
