//! R2 fixture: wall-clock reads. A finding in `sos-net`; clean in the
//! exempt `sos-obs` (the test lints this same source under both
//! paths).

use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
