//! R1 good fixture: fallible decode, plus every way a panic token can
//! legitimately appear without being production panic code.
//!
//! Call `.unwrap()` freely in doc prose like this — and even in doc
//! examples:
//!
//! ```
//! let x: Option<u8> = Some(1);
//! x.unwrap();
//! ```

/// Decodes without panicking: `panic!` in this sentence is prose.
pub fn decode(bytes: &[u8]) -> Result<u64, String> {
    let src = bytes.get(..8).ok_or_else(|| "short input".to_string())?;
    let mut arr = [0u8; 8];
    arr.copy_from_slice(src);
    let advice = "never panic!(in strings)"; // nor .unwrap() in comments
    let _ = advice;
    /* block comments may say .expect("whatever") too */
    Ok(u64::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        super::decode(&[0; 8]).unwrap();
        let v: Vec<u8> = Vec::new();
        assert!(v.first().is_none());
        if !v.is_empty() {
            panic!("tests are exempt");
        }
    }
}
