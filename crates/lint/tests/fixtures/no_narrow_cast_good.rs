//! R4 good fixture: checked conversions and widening casts only.

pub fn encode(data: &[u8], arr: [u8; 8], out: &mut Vec<u8>) -> Result<(), String> {
    let count = u16::try_from(data.len()).map_err(|_| "too many entries".to_string())?;
    out.extend_from_slice(&count.to_le_bytes());
    let seq = u64::from_le_bytes(arr);
    out.extend_from_slice(&seq.to_le_bytes());
    let widened = count as u64;
    out.extend_from_slice(&widened.to_le_bytes());
    Ok(())
}
