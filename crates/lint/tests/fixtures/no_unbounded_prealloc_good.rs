//! R5 good fixture: every allocation shows its bound at the call.

const MAX_ENTRIES: usize = 1024;

pub fn decode(buf: &[u8], arr: [u8; 8]) -> Vec<u64> {
    let count = u64::from_le_bytes(arr) as usize;
    let mut out = Vec::with_capacity(count.min(MAX_ENTRIES));
    let mut fixed: Vec<u8> = Vec::with_capacity(64);
    fixed.reserve(buf.len());
    out.resize(count.min(MAX_ENTRIES), 0);
    out
}
