//! The lexer cases that break grep-based linting: tokens that *look*
//! like violations but live in comments, strings, or char literals —
//! and line accounting across multi-line literals.

use sos_lint::lexer::{lex, TokKind};
use sos_lint::{lint_source, Config};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, t.text.to_string()))
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* outer /* inner */ still outer */ fn x() {}";
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokKind::BlockComment);
    assert_eq!(toks[0].1, "/* outer /* inner */ still outer */");
    assert_eq!(toks[1], (TokKind::Ident, "fn".to_string()));
}

#[test]
fn raw_strings_swallow_quotes_and_slashes() {
    // `//` and `"` inside a raw string must not start a comment or end
    // the literal early; the fence is the hash count.
    let src = r####"let s = r##"quote " slash // panic!()"## ;"####;
    let toks = kinds(src);
    let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].1.contains("panic!()"));
    // No ident token for `panic` escaped the literal.
    assert!(!toks.iter().any(|t| t.0 == TokKind::Ident && t.1 == "panic"));
}

#[test]
fn line_comment_markers_inside_strings_stay_strings() {
    let src = "let url = \"https://example.com\"; let n = 1;";
    let toks = kinds(src);
    assert!(toks
        .iter()
        .any(|t| t.0 == TokKind::Str && t.1.contains("//example")));
    assert!(!toks.iter().any(|t| t.0 == TokKind::LineComment));
}

#[test]
fn char_literals_and_lifetimes_are_distinguished() {
    let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
    let toks = lex(src);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let src = r#"let s = "she said \"unwrap()\" loudly";"#;
    let toks = kinds(src);
    let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].1.contains("unwrap"));
}

#[test]
fn string_line_continuations_keep_line_numbers_exact() {
    // Regression: a `\` + newline inside a string skipped the newline
    // without counting it, shifting every later finding's line (first
    // seen as wrong excerpts for inflate.rs findings). The string here
    // spans lines 1-2, so `fn` sits on line 3 — an uncounted
    // continuation would report 2.
    let src = "let s = \"a\\\n   b\";\nfn f() {}\n";
    let toks = lex(src);
    let f = toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text == "fn")
        .expect("fn token");
    assert_eq!(f.line, 3);
}

#[test]
fn multiline_strings_count_their_newlines() {
    let src = "let s = \"line one\nline two\";\nlet t = 1;\n";
    let toks = lex(src);
    let t = toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text == "t")
        .expect("t token");
    assert_eq!(t.line, 3);
}

#[test]
fn violations_in_comments_and_strings_never_fire() {
    let src = r#"
//! Doc prose: call .unwrap() or panic!("x") — or even Instant::now().

/// More prose: HashMap::new(), SystemTime::now(), todo!().
pub fn clean(n: u64) -> u64 {
    // .expect("comment") and unreachable!() in a line comment
    let s = "panic!(\"in a string\") and .unwrap() too";
    /* Instant::now() in a block comment */
    let _ = s;
    n
}
"#;
    // Linted as a file where every rule is in scope.
    let report = lint_source("crates/core/src/sync.rs", src, &Config::sos_defaults());
    assert!(report.is_clean(), "{:#?}", report.findings);
}

#[test]
fn unterminated_input_degrades_gracefully() {
    // The lexer must not panic or loop on code rustc would reject.
    for src in ["let s = \"unterminated", "/* unterminated", "r#\"raw", "b'"] {
        let _ = lex(src);
    }
}
