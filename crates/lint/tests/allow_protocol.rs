//! The escape-hatch contract: an allow must name its rule, carry a
//! reason, actually suppress something — and is always counted in the
//! report, never silent.

use sos_lint::{lint_source, Config, LintReport};

fn lint(src: &str) -> LintReport {
    lint_source("crates/core/src/fixture.rs", src, &Config::sos_defaults())
}

#[test]
fn allow_on_preceding_line_suppresses_the_finding() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    // sos-lint: allow(no-panic) reason="fixture: x is checked by the caller"
    x.unwrap()
}
"#;
    let report = lint(src);
    assert!(report.is_clean(), "{:#?}", report.findings);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].suppressed, 1);
    assert_eq!(report.allows[0].rules, ["no-panic"]);
    assert!(report.allows[0].reason.contains("checked by the caller"));
}

#[test]
fn trailing_allow_covers_its_own_line() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    x.unwrap() // sos-lint: allow(no-panic) reason="fixture: trailing form"
}
"#;
    let report = lint(src);
    assert!(report.is_clean(), "{:#?}", report.findings);
    assert_eq!(report.allows[0].suppressed, 1);
}

#[test]
fn allow_without_reason_is_malformed() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    // sos-lint: allow(no-panic)
    x.unwrap()
}
"#;
    let report = lint(src);
    // The annotation is rejected AND the unwrap still fires.
    let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"allow"), "{rules:?}");
    assert!(rules.contains(&"no-panic"), "{rules:?}");
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    // sos-lint: allow(no-wallclock) reason="fixture: names the wrong rule"
    x.unwrap()
}
"#;
    let report = lint(src);
    let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    // The unwrap fires, and the allow is flagged as suppressing nothing.
    assert!(rules.contains(&"no-panic"), "{rules:?}");
    assert!(rules.contains(&"allow"), "{rules:?}");
}

#[test]
fn unused_allow_is_a_finding() {
    let src = r#"
pub fn f(x: u8) -> u8 {
    // sos-lint: allow(no-panic) reason="fixture: nothing to suppress"
    x + 1
}
"#;
    let report = lint(src);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, "allow");
    assert!(report.findings[0].message.contains("suppresses nothing"));
}

#[test]
fn unknown_rule_name_is_malformed() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    // sos-lint: allow(no-such-rule) reason="fixture: bogus rule id"
    x.unwrap()
}
"#;
    let report = lint(src);
    let allow_finding = report
        .findings
        .iter()
        .find(|f| f.rule == "allow")
        .expect("a finding for the bad annotation");
    assert!(
        allow_finding.message.contains("unknown rule"),
        "{}",
        allow_finding.message
    );
}

#[test]
fn one_allow_can_name_multiple_rules() {
    let src = r#"
pub fn f(arr: [u8; 8], data: &[u8]) -> Vec<u8> {
    let n = u64::from_le_bytes(arr) as usize;
    // sos-lint: allow(no-unbounded-prealloc, no-narrow-cast) reason="fixture: both rules on one line"
    let mut v = Vec::with_capacity(n); let c = data.len() as u16;
    v.push(c as u8);
    v
}
"#;
    let report = lint_source("crates/core/src/sync.rs", src, &Config::sos_defaults());
    assert!(report.is_clean(), "{:#?}", report.findings);
    assert_eq!(report.allows[0].suppressed, 2);
}

#[test]
fn doc_comments_mentioning_the_syntax_are_ignored() {
    let src = r#"
/// Write `// sos-lint: allow(no-panic) reason="..."` above the line.
pub fn f(x: u8) -> u8 {
    x + 1
}
"#;
    let report = lint(src);
    assert!(report.is_clean(), "{:#?}", report.findings);
    assert!(report.allows.is_empty());
}
