//! Every rule must fire on its bad fixture and stay silent on its good
//! twin. Fixtures are linted as source strings under synthetic
//! workspace paths, so crate scoping (panic crates, wall-clock
//! exemptions, ordered-output and wire files) is exercised exactly as
//! in a real run.

use sos_lint::{lint_source, Config, LintReport};

fn lint(rel_path: &str, src: &str) -> LintReport {
    lint_source(rel_path, src, &Config::sos_defaults())
}

fn rules_fired(report: &LintReport) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn no_panic_fires_on_bad_and_not_on_good() {
    let bad = lint(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    assert_eq!(rules_fired(&bad), ["no-panic"]);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!
    assert_eq!(bad.findings.len(), 6, "{:#?}", bad.findings);

    let good = lint(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_good.rs"),
    );
    assert!(good.is_clean(), "{:#?}", good.findings);
}

#[test]
fn no_panic_scopes_to_protocol_crates() {
    // The same panicking source is fine in a crate outside the
    // panic-free set (sos-obs is not in it).
    let report = lint(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    assert!(report.is_clean(), "{:#?}", report.findings);
}

#[test]
fn no_wallclock_fires_outside_exempt_crates() {
    let src = include_str!("fixtures/no_wallclock.rs");
    let bad = lint("crates/net/src/fixture.rs", src);
    assert_eq!(rules_fired(&bad), ["no-wallclock"]);
    assert_eq!(bad.findings.len(), 2, "{:#?}", bad.findings);

    // The observability and bench crates are the sanctioned readers.
    assert!(lint("crates/obs/src/fixture.rs", src).is_clean());
    assert!(lint("crates/bench/src/fixture.rs", src).is_clean());
}

#[test]
fn no_hash_order_fires_in_ordered_output_files_only() {
    let src = include_str!("fixtures/no_hash_order.rs");
    let bad = lint("crates/trace/src/record.rs", src);
    assert_eq!(rules_fired(&bad), ["no-hash-order"]);
    assert!(!bad.findings.is_empty());

    // Same source away from encoded output: no findings.
    assert!(lint("crates/trace/src/analytics.rs", src).is_clean());

    // Ordered collections pass even in ordered-output files.
    let good = lint(
        "crates/trace/src/record.rs",
        include_str!("fixtures/no_hash_order_good.rs"),
    );
    assert!(good.is_clean(), "{:#?}", good.findings);
}

#[test]
fn no_narrow_cast_fires_on_bad_and_not_on_good() {
    let bad = lint(
        "crates/net/src/frame.rs",
        include_str!("fixtures/no_narrow_cast_bad.rs"),
    );
    assert_eq!(rules_fired(&bad), ["no-narrow-cast"]);
    // .len() as u16, from_le_bytes as u32, .round() as u64
    assert_eq!(bad.findings.len(), 3, "{:#?}", bad.findings);

    let good = lint(
        "crates/net/src/frame.rs",
        include_str!("fixtures/no_narrow_cast_good.rs"),
    );
    assert!(good.is_clean(), "{:#?}", good.findings);
}

#[test]
fn no_narrow_cast_scopes_to_wire_files() {
    // The same casts in a non-wire file are out of scope (clippy and
    // review carry those).
    let report = lint(
        "crates/net/src/discovery.rs",
        include_str!("fixtures/no_narrow_cast_bad.rs"),
    );
    assert!(report.is_clean(), "{:#?}", report.findings);
}

#[test]
fn no_unbounded_prealloc_fires_on_bad_and_not_on_good() {
    let bad = lint(
        "crates/trace/src/codec_fixture.rs",
        include_str!("fixtures/no_unbounded_prealloc_bad.rs"),
    );
    assert_eq!(rules_fired(&bad), ["no-unbounded-prealloc"]);
    // with_capacity, reserve, resize — all from the wire-read count.
    assert_eq!(bad.findings.len(), 3, "{:#?}", bad.findings);

    let good = lint(
        "crates/trace/src/codec_fixture.rs",
        include_str!("fixtures/no_unbounded_prealloc_good.rs"),
    );
    assert!(good.is_clean(), "{:#?}", good.findings);
}

#[test]
fn findings_carry_location_and_excerpt() {
    let bad = lint(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    let unwrap_finding = bad
        .findings
        .iter()
        .find(|f| f.excerpt.contains("unwrap"))
        .expect("an unwrap finding");
    assert_eq!(unwrap_finding.file, "crates/core/src/fixture.rs");
    assert_eq!(unwrap_finding.line, 4);
}
