//! Property tests pinning the histogram's accuracy contract: every
//! reported quantile lands in the same log₂ bucket as the exact
//! nearest-rank order statistic of the raw samples, merging is
//! associative up to snapshots, and the empty/single-sample edges
//! behave.

use proptest::prelude::*;
use sos_obs::Histogram;

/// Exact nearest-rank quantile over raw samples (the naive oracle).
fn oracle_quantile(samples: &[u64], q: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

fn histogram_of(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Sample streams spanning the full bucket range: small dense values,
/// mid-range, and enormous outliers. (The vendored proptest stand-in
/// has no `prop_oneof`, so a selector byte picks the regime.)
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u8>(), any::<u64>()), 1..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, v)| match sel % 3 {
                0 => v % 16,
                1 => v % 10_000,
                _ => v,
            })
            .collect()
    })
}

proptest! {
    /// The histogram's quantile is the upper bound of the bucket the
    /// exact order statistic falls into — never a different bucket.
    #[test]
    fn quantile_within_one_bucket_of_oracle(
        samples in arb_samples(),
        q in 0.0f64..=1.0,
    ) {
        let h = histogram_of(&samples);
        let got = h.quantile(q).expect("non-empty");
        let exact = oracle_quantile(&samples, q).expect("non-empty");
        prop_assert_eq!(
            Histogram::bucket_of(got),
            Histogram::bucket_of(exact),
            "q={} got={} exact={}", q, got, exact
        );
        // And the reported value is that bucket's upper bound, so it
        // never under-reports the exact statistic.
        prop_assert!(got >= exact);
    }

    /// (a ∪ b) ∪ c and a ∪ (b ∪ c) produce identical snapshots, and
    /// both match recording the concatenated stream directly.
    #[test]
    fn merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let left = histogram_of(&a);
        left.merge_from(&histogram_of(&b));
        left.merge_from(&histogram_of(&c));

        let bc = histogram_of(&b);
        bc.merge_from(&histogram_of(&c));
        let right = histogram_of(&a);
        right.merge_from(&bc);

        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = histogram_of(&all);

        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.snapshot(), direct.snapshot());
    }

    /// One sample: every quantile resolves to that sample's bucket,
    /// and the snapshot carries it exactly in max/sum.
    #[test]
    fn single_value_quantiles(v in any::<u64>(), q in 0.0f64..=1.0) {
        let h = histogram_of(&[v]);
        prop_assert_eq!(h.quantile(q), Some(Histogram::bucket_upper(Histogram::bucket_of(v))));
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.max, v);
        prop_assert_eq!(snap.sum, v);
        prop_assert_eq!(snap.buckets.len(), 1);
    }
}

#[test]
fn empty_histogram_edges() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), None);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.buckets, Vec::new());
    assert_eq!(snap.p50, None);
    assert_eq!(snap.mean(), None);

    // Merging an empty histogram is the identity.
    let a = Histogram::new();
    a.record(7);
    let before = a.snapshot();
    a.merge_from(&h);
    assert_eq!(a.snapshot(), before);
}
