//! Property tests pinning the provenance layer's two load-bearing
//! contracts: [`GlobalTimeline::merge`] imposes a total order that is
//! stable under arbitrary re-sharding of entries across journals (the
//! shard-count-invariance guarantee the PATH-REPORT byte-identity
//! tests rely on), and the peer-tagged JSONL encoding round-trips
//! every event variant exactly.

use proptest::prelude::*;
use sos_obs::journal::{JournalEntry, ObsEvent};
use sos_obs::{GlobalTimeline, Journal};
use sos_sim::SimTime;

/// One arbitrary journal entry from a raw tuple. A selector byte picks
/// the event variant (the vendored proptest stand-in has no
/// `prop_oneof`); `t` is a small per-node time *delta* — the generator
/// accumulates it into a per-node clock, so each node's stream is
/// time-ordered (as real journals are) while duplicate timestamps
/// across nodes — the case the `(time, node, seq)` tie-break exists
/// for — occur constantly.
type RawEntry = (u8, u64, u8, u32, u64, u8);

fn entry_of((sel, t, node, peer, seq, flag): RawEntry) -> JournalEntry {
    let author = u128::from(seq % 5) + 0xab00;
    let cause = ["ttl", "capacity"][usize::from(flag % 2)];
    let reject = ["forged_duplicate", "equivocation", "verify_failed"][usize::from(flag % 3)];
    let reason = ["done", "out_of_range", "protocol_error"][usize::from(flag % 3)];
    let event = match sel % 12 {
        0 => ObsEvent::SessionOpen {
            peer,
            initiated: flag % 2 == 0,
        },
        1 => ObsEvent::SessionClose { peer, reason },
        2 => ObsEvent::BundlePost { author, seq },
        3 => ObsEvent::BundleAccept {
            from: peer,
            author,
            seq,
            hops: u32::from(flag),
            stored: flag % 2 == 0,
            carried: usize::from(flag),
        },
        4 => ObsEvent::BundleDuplicate {
            from: peer,
            author,
            seq,
        },
        5 => ObsEvent::BundleReject {
            from: peer,
            author,
            seq,
            cause: reject,
        },
        6 => ObsEvent::BundleEvict { author, seq, cause },
        7 => ObsEvent::StoreEvict {
            count: usize::from(flag),
        },
        8 => ObsEvent::WantSent {
            peer,
            authors: usize::from(flag),
            chunks: usize::from(flag % 7),
        },
        9 => ObsEvent::Served {
            peer,
            bundles: usize::from(flag),
            frames: usize::from(flag % 9),
        },
        10 => ObsEvent::ContactUp {
            a: peer,
            b: peer + 1,
        },
        _ => ObsEvent::ContactDown {
            a: peer,
            b: peer + 1,
        },
    };
    JournalEntry {
        time: SimTime::from_millis(t),
        node: u32::from(node % 6),
        event,
    }
}

fn arb_entries() -> impl Strategy<Value = Vec<JournalEntry>> {
    prop::collection::vec(
        (
            any::<u8>(),
            any::<u64>(),
            any::<u8>(),
            0u32..32,
            any::<u64>(),
            any::<u8>(),
        ),
        0..120,
    )
    .prop_map(|raw| {
        let mut clock = [0u64; 6];
        raw.into_iter()
            .map(|(sel, t, node, peer, seq, flag)| {
                let n = usize::from(node % 6);
                clock[n] += t % 3; // mostly-zero deltas → heavy tie pressure
                entry_of((sel, clock[n], node, peer, seq, flag))
            })
            .collect()
    })
}

/// Splits `entries` into `shards` journals round-robin — per-node
/// relative order is preserved (each node's events stay in emission
/// order within its shard stream only if the shard assignment is
/// per-node), so shard by node id, which is what real sharded runs do.
fn shard_by_node(entries: &[JournalEntry], shards: u32) -> Vec<Journal> {
    let mut journals: Vec<Journal> = (0..shards).map(|_| Journal::default()).collect();
    for e in entries {
        journals[(e.node % shards) as usize].push(e.clone());
    }
    journals
}

proptest! {
    /// Merging is stable under re-sharding: splitting the same entry
    /// stream across 1, 2, or 5 journals (by node, as sharded runs do)
    /// yields byte-identical global timelines.
    #[test]
    fn merge_is_invariant_under_resharding(entries in arb_entries()) {
        let one = GlobalTimeline::merge(&shard_by_node(&entries, 1));
        let two = GlobalTimeline::merge(&shard_by_node(&entries, 2));
        let five = GlobalTimeline::merge(&shard_by_node(&entries, 5));
        prop_assert_eq!(one.to_jsonl(), two.to_jsonl());
        prop_assert_eq!(one.to_jsonl(), five.to_jsonl());
        prop_assert_eq!(one.len(), entries.len());
    }

    /// The merged timeline is totally ordered by `(time, node, seq)`:
    /// strictly increasing keys, no ties anywhere.
    #[test]
    fn merge_imposes_a_strict_total_order(entries in arb_entries()) {
        let timeline = GlobalTimeline::merge(&shard_by_node(&entries, 3));
        let keys: Vec<_> = timeline.events().iter().map(|e| e.sort_key()).collect();
        for pair in keys.windows(2) {
            prop_assert!(pair[0] < pair[1], "ties or inversions in {:?}", pair);
        }
    }

    /// Per-node emission order survives the merge: filtering the
    /// timeline back down to one node reproduces that node's original
    /// event sequence exactly.
    #[test]
    fn merge_preserves_per_node_order(entries in arb_entries()) {
        let timeline = GlobalTimeline::merge(&shard_by_node(&entries, 4));
        for node in 0..6u32 {
            let original: Vec<_> = entries
                .iter()
                .filter(|e| e.node == node)
                .map(|e| &e.event)
                .collect();
            let merged: Vec<_> = timeline
                .events()
                .iter()
                .filter(|e| e.node == node)
                .map(|e| &e.event)
                .collect();
            prop_assert_eq!(original, merged, "node {} order mangled", node);
        }
    }

    /// Every peer-tagged event variant survives a JSONL round-trip:
    /// `to_jsonl` → `from_jsonl` is the identity on entries.
    #[test]
    fn jsonl_round_trips_arbitrary_entries(entries in arb_entries()) {
        for entry in &entries {
            let line = entry.to_jsonl();
            let back = JournalEntry::from_jsonl(&line);
            prop_assert_eq!(Some(entry), back.as_ref(), "line: {}", line);
        }
    }
}
