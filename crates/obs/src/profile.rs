//! Span-style self-profiling: scoped timers around named pipeline
//! stages, aggregated into a calls/total/mean/max table.
//!
//! Profiling is **globally gated** by [`set_enabled`]: when disabled
//! (the default), [`span`] returns an inert guard whose construction
//! and drop cost one relaxed atomic load — cheap enough to leave in
//! the hot paths permanently. When enabled, each span records its
//! wall-clock duration into a thread-local table drained by [`take`].
//!
//! Durations are wall-clock and therefore *not* deterministic; call
//! **counts** are. Profiles feed the human-readable RUN-REPORT table
//! only and are never part of byte-identity comparisons.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static STAGES: RefCell<BTreeMap<&'static str, StageStats>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Turns profiling on or off for every thread (spans started while
/// disabled record nothing).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Whether profiling is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Starts a span for `stage`. The returned guard records the elapsed
/// wall-clock time into the current thread's profile when dropped —
/// or nothing at all if profiling is disabled.
#[inline]
// The span profiler is one of the two sanctioned wall-clock readers
// (see clippy.toml `disallowed-methods`): it measures real elapsed
// time and never feeds simulation behavior.
#[allow(clippy::disallowed_methods)]
pub fn span(stage: &'static str) -> Span {
    Span {
        stage,
        start: is_enabled().then(Instant::now),
    }
}

/// Drains and returns the current thread's accumulated profile.
pub fn take() -> Profile {
    STAGES.with(|s| Profile {
        stages: std::mem::take(&mut *s.borrow_mut()),
    })
}

/// An active span guard; see [`span`].
#[must_use = "a span records on drop; binding it to _ discards the measurement"]
#[derive(Debug)]
pub struct Span {
    stage: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            STAGES.with(|s| {
                s.borrow_mut()
                    .entry(self.stage)
                    .or_default()
                    .record(elapsed);
            });
        }
    }
}

/// Aggregated timings for one named stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage ran.
    pub calls: u64,
    /// Total time spent in the stage.
    pub total: Duration,
    /// Longest single call.
    pub max: Duration,
}

impl StageStats {
    /// Folds one call's duration in.
    pub fn record(&mut self, elapsed: Duration) {
        self.calls += 1;
        self.total += elapsed;
        self.max = self.max.max(elapsed);
    }

    /// Mean time per call (zero when never called).
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / self.calls as u32
        }
    }

    /// Folds another stage's stats in.
    pub fn merge(&mut self, other: &StageStats) {
        self.calls += other.calls;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

/// An aggregated self-profile: per-stage [`StageStats`] keyed by stage
/// name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Stats per stage, ordered by stage name.
    pub stages: BTreeMap<&'static str, StageStats>,
}

impl Profile {
    /// `true` when no stage recorded anything.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Folds another profile in (stage-wise merge).
    pub fn merge(&mut self, other: &Profile) {
        for (stage, stats) in &other.stages {
            self.stages.entry(stage).or_default().merge(stats);
        }
    }

    /// Renders the profile as an aligned text table
    /// (stage / calls / total / mean / max).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>12} {:>12} {:>12}",
            "stage", "calls", "total", "mean", "max"
        );
        for (stage, s) in &self.stages {
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>12} {:>12} {:>12}",
                stage,
                s.calls,
                fmt_duration(s.total),
                fmt_duration(s.mean()),
                fmt_duration(s.max),
            );
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        let _ = take(); // drain anything a prior test left behind
        {
            let _s = span("test/noop");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn enabled_spans_aggregate() {
        set_enabled(true);
        let _ = take();
        for _ in 0..3 {
            let _s = span("test/stage");
        }
        set_enabled(false);
        let p = take();
        let s = p.stages["test/stage"];
        assert_eq!(s.calls, 3);
        assert!(s.max >= s.mean());
        assert!(p.table().contains("test/stage"));
    }

    #[test]
    fn merge_sums_calls() {
        let mut a = Profile::default();
        a.stages.insert(
            "x",
            StageStats {
                calls: 2,
                total: Duration::from_micros(10),
                max: Duration::from_micros(6),
            },
        );
        let mut b = Profile::default();
        b.stages.insert(
            "x",
            StageStats {
                calls: 1,
                total: Duration::from_micros(20),
                max: Duration::from_micros(20),
            },
        );
        a.merge(&b);
        let s = a.stages["x"];
        assert_eq!(s.calls, 3);
        assert_eq!(s.total, Duration::from_micros(30));
        assert_eq!(s.max, Duration::from_micros(20));
        assert_eq!(s.mean(), Duration::from_micros(10));
    }
}
