//! Cross-node causal analysis on top of the [`journal`](crate::journal):
//! global timeline merging, per-bundle propagation DAGs, and delivery
//! forensics.
//!
//! The journal answers "what did node N do"; this module answers the
//! question DTN operators actually ask: **which hop-by-hop path did each
//! bundle take, and for the ones that never arrived — why not?**
//!
//! Three layers, each built from the one below:
//!
//! 1. [`GlobalTimeline::merge`] folds every per-node [`Journal`] into
//!    one canonically ordered event stream, sorted by
//!    `(time, node, seq)` where `seq` is the per-node emission index.
//!    No hash order anywhere — the result is byte-identical across
//!    record→replay and across contact-engine shard counts, because
//!    each node's event subsequence is itself deterministic.
//! 2. [`Provenance::build`] replays the timeline once, reconstructing
//!    contact intervals and a [`BundlePath`] per bundle: the author →
//!    relay → … → destination DAG, each hop tagged with the contact it
//!    rode, the hop count, and a wait-vs-transfer latency split.
//! 3. [`Provenance::classify`] runs delivery forensics: every authored
//!    bundle gets exactly one [`Verdict`], and every undelivered bundle
//!    exactly one root-cause [`DropCause`] — including the honest
//!    [`DropCause::JournalTruncated`] when the ring overflowed, rather
//!    than guessing from a partial record.
//!
//! Everything here is pure analysis over immutable snapshots: it runs
//! *after* the experiment, so it adds zero overhead to instrumented
//! runs and inherits the journal's determinism guarantees wholesale.

use crate::journal::{Journal, ObsEvent};
use sos_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// One event on the merged global timeline: a journal entry plus the
/// per-node emission index (`seq`) that makes the sort key
/// `(time, node, seq)` a total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Sim time the event happened.
    pub time: SimTime,
    /// Node that emitted it.
    pub node: u32,
    /// Emission index *within this node's event stream* (0-based).
    pub seq: u64,
    /// The event itself.
    pub event: ObsEvent,
}

impl TimelineEvent {
    /// The canonical ordering key: `(time, node, seq)`. The merged
    /// timeline is strictly increasing in this key.
    pub fn sort_key(&self) -> (u64, u32, u64) {
        (self.time.as_millis(), self.node, self.seq)
    }

    /// Renders the event as one JSONL line (entry fields plus `seq`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"t_ms":{},"node":{},"seq":{},"event":"{}""#,
            self.time.as_millis(),
            self.node,
            self.seq,
            self.event.kind()
        );
        self.event.fields_jsonl(&mut out);
        out.push('}');
        out
    }
}

/// All per-node journals of a run merged into one deterministically
/// ordered event stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalTimeline {
    events: Vec<TimelineEvent>,
    dropped: u64,
    end: SimTime,
}

impl GlobalTimeline {
    /// Merges journals into one timeline sorted by `(time, node, seq)`.
    ///
    /// `seq` is assigned per node in each journal's retention order, so
    /// two runs whose per-node event subsequences match produce
    /// byte-identical timelines regardless of how the events were
    /// interleaved across journals (or contact-engine shards) at record
    /// time. `dropped` counts are summed; when nonzero the timeline is
    /// a *suffix* of the run and forensics reports
    /// [`DropCause::JournalTruncated`].
    pub fn merge<'a, I>(journals: I) -> GlobalTimeline
    where
        I: IntoIterator<Item = &'a Journal>,
    {
        let mut events = Vec::new();
        let mut next_seq: BTreeMap<u32, u64> = BTreeMap::new();
        let mut dropped = 0u64;
        let mut end = SimTime::from_millis(0);
        for journal in journals {
            dropped += journal.dropped();
            for entry in journal.entries() {
                let seq = next_seq.entry(entry.node).or_insert(0);
                events.push(TimelineEvent {
                    time: entry.time,
                    node: entry.node,
                    seq: *seq,
                    event: entry.event.clone(),
                });
                *seq += 1;
                if entry.time > end {
                    end = entry.time;
                }
            }
        }
        events.sort_by_key(|e| e.sort_key());
        GlobalTimeline {
            events,
            dropped,
            end,
        }
    }

    /// The merged events, in canonical `(time, node, seq)` order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Total entries the source journals dropped to capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Timestamp of the last event (the analysis horizon).
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Number of merged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were merged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the whole timeline as JSONL, one event per line, in
    /// canonical order — byte-identical across replay and shard counts.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// Identity of one bundle: the author tag plus the author-assigned
/// message number (mirrors `sos_core::MessageId` without the type
/// dependency).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BundleKey {
    /// Author tag ([`crate::author_tag`] of the posting user).
    pub author: u128,
    /// Author-assigned message number.
    pub seq: u64,
}

impl fmt::Display for BundleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The tag packs the 10 ASCII bytes of the user id
        // little-endian; render them back when printable.
        let bytes = self.author.to_le_bytes();
        let name = &bytes[..10];
        if name
            .iter()
            .all(|b| b.is_ascii_graphic() || *b == b' ' || *b == 0)
        {
            let text: String = name
                .iter()
                .take_while(|b| **b != 0)
                .map(|b| *b as char)
                .collect();
            write!(f, "{text}#{}", self.seq)
        } else {
            write!(f, "{:032x}#{}", self.author, self.seq)
        }
    }
}

/// One contact interval between two nodes, reconstructed from
/// `ContactUp`/`ContactDown` journal events (`a < b`; still-open
/// contacts are closed at the timeline's end).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contact {
    /// Lower node id of the pair.
    pub a: u32,
    /// Higher node id of the pair.
    pub b: u32,
    /// When the contact came up.
    pub up: SimTime,
    /// When it went down (or the timeline ended).
    pub down: SimTime,
}

/// One hop of a bundle's propagation DAG: the first verified arrival of
/// the bundle at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// When the accept happened.
    pub at: SimTime,
    /// Hop count of the received copy (after this hop).
    pub hops: u32,
    /// The transfer edge's source node (sending peer).
    pub from: u32,
    /// Milliseconds the copy sat on the sender before the carrying
    /// contact came up (custody wait).
    pub wait_ms: u64,
    /// Milliseconds between the carrying contact coming up (or the
    /// sender acquiring the copy, whichever is later) and the accept
    /// (transfer latency).
    pub transfer_ms: u64,
    /// Whether the receiving node kept a copy (custody) or only
    /// surfaced the bundle to its application.
    pub stored: bool,
}

/// The reconstructed propagation state of one bundle: author → relay →
/// … → destination edges plus custody and eviction history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BundlePath {
    /// Node that authored the bundle (`None` when the post event fell
    /// out of a truncated journal).
    pub origin: Option<u32>,
    /// When it was posted.
    pub posted: Option<SimTime>,
    /// First verified arrival per node (the DAG's edges: follow
    /// [`Arrival::from`] pointers back to the origin).
    pub arrivals: BTreeMap<u32, Arrival>,
    /// Nodes that evicted their copy, with the eviction cause
    /// (`"ttl"` or `"capacity"`).
    pub evicted: BTreeMap<u32, &'static str>,
    /// Nodes currently holding a stored copy (custody) at timeline end.
    pub custody: BTreeSet<u32>,
    /// Every node that ever held a stored copy (origin included).
    pub stored_ever: BTreeSet<u32>,
    /// Whether any node rejected a copy of this bundle.
    pub rejected: bool,
}

impl BundlePath {
    /// Whether `node` received (was handed a verified copy of) the
    /// bundle.
    pub fn delivered_to(&self, node: u32) -> bool {
        self.arrivals.contains_key(&node)
    }

    /// The hop chain `origin → … → node`, or `None` when `node` never
    /// received the bundle or the chain's root fell out of a truncated
    /// journal.
    pub fn path_to(&self, node: u32) -> Option<Vec<u32>> {
        let origin = self.origin?;
        if node == origin {
            return Some(vec![node]);
        }
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(arrival) = self.arrivals.get(&cur) {
            chain.push(arrival.from);
            cur = arrival.from;
            if cur == origin {
                chain.reverse();
                return Some(chain);
            }
            if chain.len() > self.arrivals.len() + 1 {
                return None; // inconsistent record; refuse to loop
            }
        }
        None
    }

    /// End-to-end latency (post → first arrival at `node`) in
    /// milliseconds.
    pub fn latency_ms_to(&self, node: u32) -> Option<u64> {
        let arrival = self.arrivals.get(&node)?;
        Some(
            arrival
                .at
                .as_millis()
                .saturating_sub(self.posted?.as_millis()),
        )
    }
}

/// Root cause assigned to an undelivered bundle.
///
/// Declaration order is the classification precedence (derived `Ord`):
/// when a bundle missed several destinations for different reasons, the
/// *smallest* cause wins the per-bundle rollup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropCause {
    /// The journal ring overflowed ([`Journal::dropped`] nonzero), so
    /// the record is a suffix of the run — reported honestly instead of
    /// guessing a cause from partial evidence.
    JournalTruncated,
    /// A copy of the bundle was rejected by the security pipeline
    /// (forged duplicate, equivocation, or signature failure).
    SecurityRejected,
    /// No time-respecting contact path existed from the origin to the
    /// destination between posting and the end of the run — no routing
    /// scheme could have delivered it.
    NoContactPath,
    /// Every custodian copy was evicted by TTL expiry before the
    /// destination was reached.
    TtlExpired,
    /// Every custodian copy was evicted (at least one to capacity
    /// pressure) before the destination was reached.
    EvictedEverywhere,
    /// A spray-limited scheme spent its copy budget on relays that
    /// never met the destination.
    CopiesExhausted,
    /// A time-respecting path existed and copies survived, but the
    /// routing scheme never exercised the path (interest or social
    /// filtering declined the hops).
    UnusedContactPath,
}

impl DropCause {
    /// Every cause, in precedence order (for report tables).
    pub const ALL: [DropCause; 7] = [
        DropCause::JournalTruncated,
        DropCause::SecurityRejected,
        DropCause::NoContactPath,
        DropCause::TtlExpired,
        DropCause::EvictedEverywhere,
        DropCause::CopiesExhausted,
        DropCause::UnusedContactPath,
    ];

    /// Stable snake_case label (for tables and JSONL).
    pub fn label(&self) -> &'static str {
        match self {
            DropCause::JournalTruncated => "journal_truncated",
            DropCause::SecurityRejected => "security_rejected",
            DropCause::NoContactPath => "no_contact_path",
            DropCause::TtlExpired => "ttl_expired",
            DropCause::EvictedEverywhere => "evicted_everywhere",
            DropCause::CopiesExhausted => "copies_exhausted",
            DropCause::UnusedContactPath => "unused_contact_path",
        }
    }
}

/// What the forensics classifier needs to know about the routing scheme
/// under analysis (the obs layer cannot see `SchemeKind` itself —
/// `sos-experiments` maps schemes to traits).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeTraits {
    /// The scheme forwards a bounded number of copies
    /// (spray-and-wait): undelivered-but-reachable bundles classify as
    /// [`DropCause::CopiesExhausted`].
    pub spray_limited: bool,
    /// The scheme only delivers on direct origin↔destination contact:
    /// reachability ignores multi-hop paths.
    pub direct_only: bool,
}

/// Per-bundle outcome of [`Provenance::classify`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every destination received the bundle (vacuously true for
    /// bundles with no destinations).
    Delivered,
    /// At least one destination missed it; the dominant root cause
    /// across the missed destinations.
    Undelivered(DropCause),
}

/// The forensics classification of one run: exactly one [`Verdict`] per
/// authored bundle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Forensics {
    /// Verdict per authored bundle, keyed by bundle identity.
    pub verdicts: BTreeMap<BundleKey, Verdict>,
    /// Total (bundle, destination) delivery obligations examined.
    pub targets: u64,
    /// Obligations that were met (destination received the bundle).
    pub reached: u64,
    /// Journal entries lost to ring overflow (nonzero ⇒ every verdict
    /// is [`DropCause::JournalTruncated`]).
    pub truncated: u64,
}

impl Forensics {
    /// Bundles classified (every authored bundle in the record).
    pub fn authored(&self) -> usize {
        self.verdicts.len()
    }

    /// Bundles that reached every destination.
    pub fn delivered(&self) -> usize {
        self.verdicts
            .values()
            .filter(|v| matches!(v, Verdict::Delivered))
            .count()
    }

    /// Bundles that missed at least one destination.
    pub fn undelivered(&self) -> usize {
        self.authored() - self.delivered()
    }

    /// Undelivered-bundle counts per root cause, in precedence order
    /// (causes with zero bundles omitted).
    pub fn cause_counts(&self) -> Vec<(DropCause, u64)> {
        let mut map = BTreeMap::new();
        for v in self.verdicts.values() {
            if let Verdict::Undelivered(cause) = v {
                *map.entry(*cause).or_insert(0u64) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// The exhaustiveness invariant: delivered + root-caused-undelivered
    /// = authored. Structurally guaranteed (every verdict is one of the
    /// two variants); exposed so experiments can assert it end-to-end.
    pub fn accounts_for_everything(&self) -> bool {
        self.delivered() + self.undelivered() == self.authored()
    }
}

/// The full provenance reconstruction of one run: contact intervals
/// plus a [`BundlePath`] per bundle, with the forensics classifier on
/// top.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Propagation state per bundle, in key order.
    pub paths: BTreeMap<BundleKey, BundlePath>,
    /// Reconstructed contact intervals, sorted by `(up, down, a, b)`.
    pub contacts: Vec<Contact>,
    /// Journal entries lost to ring overflow across the merged
    /// journals.
    pub dropped: u64,
    /// The analysis horizon (timestamp of the last merged event).
    pub end: SimTime,
}

fn pair(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

impl Provenance {
    /// Replays a merged timeline once, reconstructing contact intervals
    /// and per-bundle propagation DAGs.
    pub fn build(timeline: &GlobalTimeline) -> Provenance {
        let mut open: BTreeMap<(u32, u32), SimTime> = BTreeMap::new();
        let mut contacts: Vec<Contact> = Vec::new();
        let mut paths: BTreeMap<BundleKey, BundlePath> = BTreeMap::new();
        for ev in timeline.events() {
            match &ev.event {
                ObsEvent::ContactUp { a, b } => {
                    open.entry(pair(*a, *b)).or_insert(ev.time);
                }
                ObsEvent::ContactDown { a, b } => {
                    if let Some(up) = open.remove(&pair(*a, *b)) {
                        let (a, b) = pair(*a, *b);
                        contacts.push(Contact {
                            a,
                            b,
                            up,
                            down: ev.time,
                        });
                    }
                }
                ObsEvent::BundlePost { author, seq } => {
                    let path = paths
                        .entry(BundleKey {
                            author: *author,
                            seq: *seq,
                        })
                        .or_default();
                    if path.posted.is_none() {
                        path.origin = Some(ev.node);
                        path.posted = Some(ev.time);
                    }
                    path.custody.insert(ev.node);
                    path.stored_ever.insert(ev.node);
                }
                ObsEvent::BundleAccept {
                    from,
                    author,
                    seq,
                    hops,
                    stored,
                    carried: _,
                } => {
                    let path = paths
                        .entry(BundleKey {
                            author: *author,
                            seq: *seq,
                        })
                        .or_default();
                    let now = ev.time.as_millis();
                    // When the sender acquired its copy: post time for
                    // the origin, its own first arrival for a relay.
                    let acquired = if path.origin == Some(*from) {
                        path.posted
                    } else {
                        path.arrivals.get(from).map(|a| a.at).or(path.posted)
                    }
                    .map(|t| t.as_millis())
                    .unwrap_or(now);
                    let (wait_ms, transfer_ms) = match open.get(&pair(*from, ev.node)) {
                        Some(up) => {
                            let up = up.as_millis();
                            (
                                up.saturating_sub(acquired),
                                now.saturating_sub(acquired.max(up)),
                            )
                        }
                        // No open contact on record (tick-granularity
                        // ordering): attribute the whole delay to wait.
                        None => (now.saturating_sub(acquired), 0),
                    };
                    path.arrivals.entry(ev.node).or_insert(Arrival {
                        at: ev.time,
                        hops: *hops,
                        from: *from,
                        wait_ms,
                        transfer_ms,
                        stored: *stored,
                    });
                    if *stored {
                        path.custody.insert(ev.node);
                        path.stored_ever.insert(ev.node);
                    }
                }
                ObsEvent::BundleReject { author, seq, .. } => {
                    paths
                        .entry(BundleKey {
                            author: *author,
                            seq: *seq,
                        })
                        .or_default()
                        .rejected = true;
                }
                ObsEvent::BundleEvict { author, seq, cause } => {
                    let path = paths
                        .entry(BundleKey {
                            author: *author,
                            seq: *seq,
                        })
                        .or_default();
                    path.custody.remove(&ev.node);
                    path.evicted.insert(ev.node, cause);
                }
                _ => {}
            }
        }
        let end = timeline.end();
        for ((a, b), up) in open {
            contacts.push(Contact {
                a,
                b,
                up,
                down: end,
            });
        }
        contacts.sort_by_key(|c| (c.up, c.down, c.a, c.b));
        Provenance {
            paths,
            contacts,
            dropped: timeline.dropped(),
            end,
        }
    }

    /// Time-respecting reachability: could a copy leaving `from` at
    /// `start` have reached `to` over the reconstructed contact
    /// intervals before the analysis horizon?
    ///
    /// Runs earliest-arrival relaxation to a fixpoint — a single pass
    /// over start-sorted intervals is *not* enough, because a long
    /// interval that came up early can carry a copy acquired much later
    /// (the copy waits inside the interval).
    ///
    /// With `direct_only`, only intervals between `from` and `to`
    /// themselves count (Direct scheme semantics).
    pub fn reachable(&self, from: u32, to: u32, start: SimTime, direct_only: bool) -> bool {
        if from == to {
            return true;
        }
        let horizon = self.end.as_millis();
        let mut earliest: BTreeMap<u32, u64> = BTreeMap::new();
        earliest.insert(from, start.as_millis());
        loop {
            let mut changed = false;
            for c in &self.contacts {
                if direct_only && pair(c.a, c.b) != pair(from, to) {
                    continue;
                }
                let up = c.up.as_millis();
                let down = c.down.as_millis().min(horizon);
                for (src, dst) in [(c.a, c.b), (c.b, c.a)] {
                    let Some(&at_src) = earliest.get(&src) else {
                        continue;
                    };
                    let meet = at_src.max(up);
                    if meet <= down {
                        let slot = earliest.entry(dst).or_insert(u64::MAX);
                        if meet < *slot {
                            *slot = meet;
                            changed = true;
                        }
                    }
                }
            }
            if earliest.contains_key(&to) {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }

    /// Delivery forensics: classify every authored bundle.
    ///
    /// `destinations` maps an origin *node* to the nodes that should
    /// receive its bundles (interested followers). `traits` describes
    /// the routing scheme under analysis. Exactly one [`Verdict`] per
    /// authored bundle; bundles whose post event fell out of a
    /// truncated ring cannot be enumerated and are covered by the
    /// blanket [`DropCause::JournalTruncated`] downgrade.
    pub fn classify(
        &self,
        destinations: &BTreeMap<u32, Vec<u32>>,
        traits: SchemeTraits,
    ) -> Forensics {
        let mut verdicts = BTreeMap::new();
        let mut targets = 0u64;
        let mut reached = 0u64;
        for (key, path) in &self.paths {
            let (Some(origin), Some(posted)) = (path.origin, path.posted) else {
                continue; // not authored within the retained window
            };
            let dests = destinations.get(&origin).map(Vec::as_slice).unwrap_or(&[]);
            let mut worst: Option<DropCause> = None;
            for &dest in dests {
                if dest == origin {
                    continue;
                }
                targets += 1;
                if path.arrivals.contains_key(&dest) {
                    reached += 1;
                    continue;
                }
                let cause = self.cause_for(path, origin, posted, dest, traits);
                worst = Some(match worst {
                    Some(w) => w.min(cause),
                    None => cause,
                });
            }
            verdicts.insert(
                *key,
                match worst {
                    None => Verdict::Delivered,
                    Some(cause) => Verdict::Undelivered(cause),
                },
            );
        }
        Forensics {
            verdicts,
            targets,
            reached,
            truncated: self.dropped,
        }
    }

    fn cause_for(
        &self,
        path: &BundlePath,
        origin: u32,
        posted: SimTime,
        dest: u32,
        traits: SchemeTraits,
    ) -> DropCause {
        if self.dropped > 0 {
            return DropCause::JournalTruncated;
        }
        if path.rejected {
            return DropCause::SecurityRejected;
        }
        if !self.reachable(origin, dest, posted, traits.direct_only) {
            return DropCause::NoContactPath;
        }
        let relays: Vec<u32> = path
            .stored_ever
            .iter()
            .copied()
            .filter(|n| *n != origin)
            .collect();
        let all_copies_gone = !path.evicted.is_empty() && path.custody.is_empty();
        let relays_all_evicted =
            !relays.is_empty() && relays.iter().all(|n| path.evicted.contains_key(n));
        if all_copies_gone || relays_all_evicted {
            if path.evicted.values().all(|cause| *cause == "ttl") {
                return DropCause::TtlExpired;
            }
            return DropCause::EvictedEverywhere;
        }
        if traits.spray_limited {
            return DropCause::CopiesExhausted;
        }
        DropCause::UnusedContactPath
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{author_tag, JournalEntry};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn entry(ms: u64, node: u32, event: ObsEvent) -> JournalEntry {
        JournalEntry {
            time: t(ms),
            node,
            event,
        }
    }

    fn key() -> BundleKey {
        BundleKey {
            author: author_tag(b"alice-0001"),
            seq: 1,
        }
    }

    /// nodes: 0 author, 1 relay, 2 destination, 3 isolated.
    fn relay_journal() -> Journal {
        let author = key().author;
        let mut j = Journal::default();
        j.push(entry(10, 0, ObsEvent::ContactUp { a: 0, b: 1 }));
        j.push(entry(5, 0, ObsEvent::BundlePost { author, seq: 1 }));
        j.push(entry(
            12,
            1,
            ObsEvent::BundleAccept {
                from: 0,
                author,
                seq: 1,
                hops: 1,
                stored: true,
                carried: 1,
            },
        ));
        j.push(entry(20, 0, ObsEvent::ContactDown { a: 0, b: 1 }));
        j.push(entry(30, 1, ObsEvent::ContactUp { a: 1, b: 2 }));
        j.push(entry(
            32,
            2,
            ObsEvent::BundleAccept {
                from: 1,
                author,
                seq: 1,
                hops: 2,
                stored: true,
                carried: 1,
            },
        ));
        j.push(entry(40, 1, ObsEvent::ContactDown { a: 1, b: 2 }));
        j
    }

    #[test]
    fn timeline_merge_is_canonically_ordered() {
        let j = relay_journal();
        let timeline = GlobalTimeline::merge([&j]);
        let times: Vec<u64> = timeline
            .events()
            .iter()
            .map(|e| e.time.as_millis())
            .collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "merge must sort by time");
        assert_eq!(timeline.len(), 7);
        assert_eq!(timeline.end(), t(40));
        assert_eq!(timeline.dropped(), 0);
        // Splitting the same events across journals changes nothing.
        let mut a = Journal::default();
        let mut b = Journal::default();
        for (i, e) in j.entries().enumerate() {
            if i % 2 == 0 {
                a.push(e.clone());
            } else {
                b.push(e.clone());
            }
        }
        let split = GlobalTimeline::merge([&a, &b]);
        assert_eq!(split.to_jsonl(), timeline.to_jsonl());
    }

    #[test]
    fn bundle_path_reconstruction_and_latency_split() {
        let j = relay_journal();
        let prov = Provenance::build(&GlobalTimeline::merge([&j]));
        let path = &prov.paths[&key()];
        assert_eq!(path.origin, Some(0));
        assert_eq!(path.posted, Some(t(5)));
        assert_eq!(path.path_to(2), Some(vec![0, 1, 2]));
        assert_eq!(path.latency_ms_to(2), Some(27));
        // Hop 0→1: posted at 5, contact up at 10, accepted at 12.
        let first = path.arrivals[&1];
        assert_eq!((first.wait_ms, first.transfer_ms, first.hops), (5, 2, 1));
        // Hop 1→2: relay acquired at 12, contact up at 30, accept 32.
        let second = path.arrivals[&2];
        assert_eq!(
            (second.wait_ms, second.transfer_ms, second.hops),
            (18, 2, 2)
        );
        assert_eq!(prov.contacts.len(), 2);
    }

    #[test]
    fn forensics_classifies_reached_and_unreachable() {
        let j = relay_journal();
        let prov = Provenance::build(&GlobalTimeline::merge([&j]));
        let mut dests = BTreeMap::new();
        dests.insert(0u32, vec![2u32, 3u32]);
        let forensics = prov.classify(&dests, SchemeTraits::default());
        assert_eq!(forensics.authored(), 1);
        assert_eq!(forensics.targets, 2);
        assert_eq!(forensics.reached, 1);
        // Node 3 never appears in any contact: NoContactPath dominates.
        assert_eq!(
            forensics.verdicts[&key()],
            Verdict::Undelivered(DropCause::NoContactPath)
        );
        assert!(forensics.accounts_for_everything());
        // Only reached destinations ⇒ Delivered.
        dests.insert(0u32, vec![2u32]);
        let forensics = prov.classify(&dests, SchemeTraits::default());
        assert_eq!(forensics.verdicts[&key()], Verdict::Delivered);
        assert_eq!(forensics.delivered(), 1);
    }

    #[test]
    fn reachability_needs_a_fixpoint_not_one_pass() {
        // Interval (1,2) comes up FIRST but must carry a copy that only
        // reaches node 1 later through (0,1): a single pass over
        // up-sorted intervals misses the path.
        let mut j = Journal::default();
        j.push(entry(0, 1, ObsEvent::ContactUp { a: 1, b: 2 }));
        j.push(entry(50, 0, ObsEvent::ContactUp { a: 0, b: 1 }));
        j.push(entry(60, 0, ObsEvent::ContactDown { a: 0, b: 1 }));
        j.push(entry(100, 1, ObsEvent::ContactDown { a: 1, b: 2 }));
        let prov = Provenance::build(&GlobalTimeline::merge([&j]));
        assert!(prov.reachable(0, 2, t(10), false));
        assert!(!prov.reachable(0, 2, t(10), true), "no direct contact");
        assert!(!prov.reachable(0, 3, t(10), false), "node 3 is isolated");
        assert!(
            !prov.reachable(2, 0, t(70), false),
            "(0,1) window already closed"
        );
    }

    #[test]
    fn forensics_cause_precedence() {
        let author = key().author;
        let mut dests = BTreeMap::new();
        dests.insert(0u32, vec![2u32]);

        // Reachable but never forwarded: scheme-dependent verdict.
        let mut j = Journal::default();
        j.push(entry(5, 0, ObsEvent::BundlePost { author, seq: 1 }));
        j.push(entry(10, 0, ObsEvent::ContactUp { a: 0, b: 2 }));
        j.push(entry(20, 0, ObsEvent::ContactDown { a: 0, b: 2 }));
        let prov = Provenance::build(&GlobalTimeline::merge([&j]));
        assert_eq!(
            prov.classify(&dests, SchemeTraits::default()).verdicts[&key()],
            Verdict::Undelivered(DropCause::UnusedContactPath)
        );
        assert_eq!(
            prov.classify(
                &dests,
                SchemeTraits {
                    spray_limited: true,
                    direct_only: false
                }
            )
            .verdicts[&key()],
            Verdict::Undelivered(DropCause::CopiesExhausted)
        );

        // A relay evicted its only copy: eviction outranks scheme traits.
        let mut j = Journal::default();
        j.push(entry(5, 0, ObsEvent::BundlePost { author, seq: 1 }));
        j.push(entry(10, 0, ObsEvent::ContactUp { a: 0, b: 1 }));
        j.push(entry(
            12,
            1,
            ObsEvent::BundleAccept {
                from: 0,
                author,
                seq: 1,
                hops: 1,
                stored: true,
                carried: 1,
            },
        ));
        j.push(entry(20, 0, ObsEvent::ContactDown { a: 0, b: 1 }));
        j.push(entry(
            25,
            1,
            ObsEvent::BundleEvict {
                author,
                seq: 1,
                cause: "ttl",
            },
        ));
        j.push(entry(30, 0, ObsEvent::ContactUp { a: 1, b: 2 }));
        j.push(entry(40, 0, ObsEvent::ContactDown { a: 1, b: 2 }));
        let prov = Provenance::build(&GlobalTimeline::merge([&j]));
        assert_eq!(
            prov.classify(
                &dests,
                SchemeTraits {
                    spray_limited: true,
                    direct_only: false
                }
            )
            .verdicts[&key()],
            Verdict::Undelivered(DropCause::TtlExpired)
        );

        // Rejection outranks eviction and reachability.
        let mut rejected = Journal::default();
        for e in j.entries() {
            rejected.push(e.clone());
        }
        rejected.push(entry(
            35,
            2,
            ObsEvent::BundleReject {
                from: 1,
                author,
                seq: 1,
                cause: "verify_failed",
            },
        ));
        let prov = Provenance::build(&GlobalTimeline::merge([&rejected]));
        assert_eq!(
            prov.classify(&dests, SchemeTraits::default()).verdicts[&key()],
            Verdict::Undelivered(DropCause::SecurityRejected)
        );
    }

    #[test]
    fn truncated_journal_downgrades_every_verdict() {
        let author = key().author;
        let mut j = Journal::with_capacity(2);
        j.push(entry(0, 0, ObsEvent::ContactUp { a: 0, b: 1 }));
        j.push(entry(5, 0, ObsEvent::BundlePost { author, seq: 1 }));
        j.push(entry(9, 0, ObsEvent::BundlePost { author, seq: 2 }));
        assert!(j.dropped() > 0);
        let prov = Provenance::build(&GlobalTimeline::merge([&j]));
        let mut dests = BTreeMap::new();
        dests.insert(0u32, vec![1u32]);
        let forensics = prov.classify(&dests, SchemeTraits::default());
        assert!(forensics.truncated > 0);
        for verdict in forensics.verdicts.values() {
            assert_eq!(*verdict, Verdict::Undelivered(DropCause::JournalTruncated));
        }
    }

    #[test]
    fn bundle_key_display_is_readable() {
        assert_eq!(key().to_string(), "alice-0001#1");
        let opaque = BundleKey {
            author: u128::MAX,
            seq: 3,
        };
        assert!(opaque.to_string().ends_with("#3"));
    }
}
