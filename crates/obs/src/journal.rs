//! The structured event journal: a bounded ring buffer of
//! sim-time-stamped [`ObsEvent`]s — the per-run "flight recorder".
//!
//! Every entry carries the node that emitted it and the [`SimTime`] at
//! which it happened, so journal contents are fully deterministic:
//! replaying a recorded run with observers attached produces the same
//! entries in the same order. When the buffer fills, the *oldest*
//! entries are dropped (and counted), keeping the tail of the run —
//! the part post-mortems care about.

use sos_sim::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default journal capacity (entries) when none is given.
///
/// Metropolis-scale runs overflow this ring; size the journal to the
/// run with [`Journal::with_capacity`] (or
/// `RunObserver::with_journal_capacity` in `sos-experiments`) and watch
/// [`Journal::dropped`] — provenance analysis downgrades every verdict
/// to `JournalTruncated` when it is nonzero rather than guessing from a
/// partial record.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Packs a 10-byte user id into the `u128` author tag journal events
/// carry (zero-padded little-endian).
///
/// `sos-obs` sits below `sos-core`, so events cannot reference the
/// `UserId` type itself; the tag is a lossless stand-in that merges and
/// sorts identically everywhere.
pub fn author_tag(id: &[u8; 10]) -> u128 {
    let mut wide = [0u8; 16];
    wide[..10].copy_from_slice(id);
    u128::from_le_bytes(wide)
}

/// One structured observability event.
///
/// Variants mirror the decision points of the middleware and driver:
/// session lifecycle, bundle authorship, the `receive_bundle`
/// accept/duplicate/reject outcome (with cause), store eviction (both
/// the per-sweep aggregate and the per-bundle record), the sync
/// protocol's want/serve exchange, and contact up/down edges from the
/// mobility layer.
///
/// Bundle events carry the message identity (`author` tag from
/// [`author_tag`] plus the author-assigned sequence number) and — on
/// accepts — the transfer peer id, so the [`provenance`](crate::provenance)
/// layer can stitch per-node journals into per-bundle propagation DAGs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A secure session reached the established state.
    SessionOpen {
        /// Peer node id.
        peer: u32,
        /// `true` when this node initiated the handshake.
        initiated: bool,
    },
    /// A session ended.
    SessionClose {
        /// Peer node id.
        peer: u32,
        /// Why it closed (`"done"`, `"out_of_range"`,
        /// `"protocol_error"`, `"security_failure"`, `"send_failure"`).
        reason: &'static str,
    },
    /// This node authored (posted) a new bundle — the root of the
    /// bundle's propagation DAG.
    BundlePost {
        /// Author tag ([`author_tag`] of the posting user).
        author: u128,
        /// Author-assigned message number.
        seq: u64,
    },
    /// A received bundle was verified (and, when `stored`, kept).
    BundleAccept {
        /// Sending peer — the transfer edge's source node.
        from: u32,
        /// Author tag of the bundle's message.
        author: u128,
        /// Author-assigned message number.
        seq: u64,
        /// Hop count of the received copy (after this hop).
        hops: u32,
        /// Whether the routing scheme kept the copy (custody) or the
        /// bundle was only surfaced to the application.
        stored: bool,
        /// Bundles carried after the accept.
        carried: usize,
    },
    /// A received bundle was already carried (benign duplicate).
    BundleDuplicate {
        /// Sending peer.
        from: u32,
        /// Author tag of the bundle's message.
        author: u128,
        /// Author-assigned message number.
        seq: u64,
    },
    /// A received bundle was rejected.
    BundleReject {
        /// Sending peer.
        from: u32,
        /// Author tag of the bundle's message.
        author: u128,
        /// Author-assigned message number.
        seq: u64,
        /// Why (`"forged_duplicate"`, `"equivocation"`,
        /// `"verify_failed"`).
        cause: &'static str,
    },
    /// One stored bundle was evicted from this node's store.
    BundleEvict {
        /// Author tag of the evicted message.
        author: u128,
        /// Author-assigned message number.
        seq: u64,
        /// Why (`"ttl"` expiry or `"capacity"` pressure).
        cause: &'static str,
    },
    /// The store evicted bundles (per-sweep aggregate; the individual
    /// [`ObsEvent::BundleEvict`] records precede it).
    StoreEvict {
        /// How many bundles were evicted in this sweep.
        count: usize,
    },
    /// A want (sync request) was sent to a peer.
    WantSent {
        /// Peer node id.
        peer: u32,
        /// Authors covered by the want.
        authors: usize,
        /// Sequence-range chunks requested.
        chunks: usize,
    },
    /// A peer's want was served.
    Served {
        /// Peer node id.
        peer: u32,
        /// Bundles shipped.
        bundles: usize,
        /// Sync frames used.
        frames: usize,
    },
    /// A contact (radio-range edge) came up between two nodes.
    ContactUp {
        /// First node id.
        a: u32,
        /// Second node id.
        b: u32,
    },
    /// A contact went down.
    ContactDown {
        /// First node id.
        a: u32,
        /// Second node id.
        b: u32,
    },
}

impl ObsEvent {
    /// A short stable kind tag (used for JSONL and aggregation).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::SessionOpen { .. } => "session_open",
            ObsEvent::SessionClose { .. } => "session_close",
            ObsEvent::BundlePost { .. } => "bundle_post",
            ObsEvent::BundleAccept { .. } => "bundle_accept",
            ObsEvent::BundleDuplicate { .. } => "bundle_duplicate",
            ObsEvent::BundleReject { .. } => "bundle_reject",
            ObsEvent::BundleEvict { .. } => "bundle_evict",
            ObsEvent::StoreEvict { .. } => "store_evict",
            ObsEvent::WantSent { .. } => "want_sent",
            ObsEvent::Served { .. } => "served",
            ObsEvent::ContactUp { .. } => "contact_up",
            ObsEvent::ContactDown { .. } => "contact_down",
        }
    }

    pub(crate) fn fields_jsonl(&self, out: &mut String) {
        match self {
            ObsEvent::SessionOpen { peer, initiated } => {
                let _ = write!(out, r#","peer":{peer},"initiated":{initiated}"#);
            }
            ObsEvent::SessionClose { peer, reason } => {
                let _ = write!(out, r#","peer":{peer},"reason":"{reason}""#);
            }
            ObsEvent::BundlePost { author, seq } => {
                let _ = write!(out, r#","author":"{author:032x}","seq":{seq}"#);
            }
            ObsEvent::BundleAccept {
                from,
                author,
                seq,
                hops,
                stored,
                carried,
            } => {
                let _ = write!(
                    out,
                    r#","from":{from},"author":"{author:032x}","seq":{seq},"hops":{hops},"stored":{stored},"carried":{carried}"#
                );
            }
            ObsEvent::BundleDuplicate { from, author, seq } => {
                let _ = write!(
                    out,
                    r#","from":{from},"author":"{author:032x}","seq":{seq}"#
                );
            }
            ObsEvent::BundleReject {
                from,
                author,
                seq,
                cause,
            } => {
                let _ = write!(
                    out,
                    r#","from":{from},"author":"{author:032x}","seq":{seq},"cause":"{cause}""#
                );
            }
            ObsEvent::BundleEvict { author, seq, cause } => {
                let _ = write!(
                    out,
                    r#","author":"{author:032x}","seq":{seq},"cause":"{cause}""#
                );
            }
            ObsEvent::StoreEvict { count } => {
                let _ = write!(out, r#","count":{count}"#);
            }
            ObsEvent::WantSent {
                peer,
                authors,
                chunks,
            } => {
                let _ = write!(
                    out,
                    r#","peer":{peer},"authors":{authors},"chunks":{chunks}"#
                );
            }
            ObsEvent::Served {
                peer,
                bundles,
                frames,
            } => {
                let _ = write!(
                    out,
                    r#","peer":{peer},"bundles":{bundles},"frames":{frames}"#
                );
            }
            ObsEvent::ContactUp { a, b } | ObsEvent::ContactDown { a, b } => {
                let _ = write!(out, r#","a":{a},"b":{b}"#);
            }
        }
    }
}

/// One journal entry: when, who, what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sim time the event happened.
    pub time: SimTime,
    /// Node that emitted it.
    pub node: u32,
    /// The event itself.
    pub event: ObsEvent,
}

/// Re-interns a tag string produced by [`JournalEntry::to_jsonl`] back
/// into the `&'static str` vocabulary the event variants carry.
fn intern_tag(s: &str) -> Option<&'static str> {
    const TAGS: &[&str] = &[
        // session close reasons
        "done",
        "out_of_range",
        "protocol_error",
        "security_failure",
        "send_failure",
        // bundle reject causes
        "forged_duplicate",
        "equivocation",
        "verify_failed",
        // bundle evict causes
        "ttl",
        "capacity",
    ];
    TAGS.iter().find(|t| **t == s).copied()
}

/// One parsed field value from a JSONL journal line.
enum JsonVal<'a> {
    Num(u128),
    Bool(bool),
    Str(&'a str),
}

/// Scans the flat `"key":value` pairs of one journal JSONL line.
///
/// The journal's writer emits no nesting, no escapes, and no spaces, so
/// a simple splitter is exact (not a general JSON parser).
fn scan_fields(line: &str) -> Option<Vec<(&str, JsonVal<'_>)>> {
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::with_capacity(8);
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let key_end = rest.find('"')?;
        let (key, tail) = rest.split_at(key_end);
        rest = tail.strip_prefix("\":")?;
        let (val, tail) = if let Some(sr) = rest.strip_prefix('"') {
            let end = sr.find('"')?;
            (JsonVal::Str(&sr[..end]), &sr[end + 1..])
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let raw = &rest[..end];
            let val = match raw {
                "true" => JsonVal::Bool(true),
                "false" => JsonVal::Bool(false),
                _ => JsonVal::Num(raw.parse().ok()?),
            };
            (val, &rest[end..])
        };
        fields.push((key, val));
        rest = tail.strip_prefix(',').unwrap_or(tail);
    }
    Some(fields)
}

impl JournalEntry {
    /// Renders the entry as one JSONL line (no trailing newline).
    ///
    /// All field values are numbers, booleans, or `&'static str` tags
    /// from a fixed vocabulary, so no escaping is required.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"t_ms":{},"node":{},"event":"{}""#,
            self.time.as_millis(),
            self.node,
            self.event.kind()
        );
        self.event.fields_jsonl(&mut out);
        out.push('}');
        out
    }

    /// Parses one line produced by [`JournalEntry::to_jsonl`] back into
    /// an entry, or `None` when the line is malformed or the event kind
    /// / tag vocabulary is unknown.
    ///
    /// Round-tripping is exact: `from_jsonl(&e.to_jsonl()) == Some(e)`
    /// for every representable entry, which lets exported flight
    /// recordings feed the provenance layer offline.
    pub fn from_jsonl(line: &str) -> Option<JournalEntry> {
        let fields = scan_fields(line.trim())?;
        let num = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                JsonVal::Num(n) if *k == key => Some(*n),
                _ => None,
            })
        };
        let string = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                JsonVal::Str(s) if *k == key => Some(*s),
                _ => None,
            })
        };
        let boolean = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                JsonVal::Bool(b) if *k == key => Some(*b),
                _ => None,
            })
        };
        let u32of = |key: &str| num(key).and_then(|n| u32::try_from(n).ok());
        let u64of = |key: &str| num(key).and_then(|n| u64::try_from(n).ok());
        let usizeof = |key: &str| num(key).and_then(|n| usize::try_from(n).ok());
        let author = || u128::from_str_radix(string("author")?, 16).ok();
        let tag = |key: &str| intern_tag(string(key)?);

        let time = SimTime::from_millis(u64of("t_ms")?);
        let node = u32of("node")?;
        let event = match string("event")? {
            "session_open" => ObsEvent::SessionOpen {
                peer: u32of("peer")?,
                initiated: boolean("initiated")?,
            },
            "session_close" => ObsEvent::SessionClose {
                peer: u32of("peer")?,
                reason: tag("reason")?,
            },
            "bundle_post" => ObsEvent::BundlePost {
                author: author()?,
                seq: u64of("seq")?,
            },
            "bundle_accept" => ObsEvent::BundleAccept {
                from: u32of("from")?,
                author: author()?,
                seq: u64of("seq")?,
                hops: u32of("hops")?,
                stored: boolean("stored")?,
                carried: usizeof("carried")?,
            },
            "bundle_duplicate" => ObsEvent::BundleDuplicate {
                from: u32of("from")?,
                author: author()?,
                seq: u64of("seq")?,
            },
            "bundle_reject" => ObsEvent::BundleReject {
                from: u32of("from")?,
                author: author()?,
                seq: u64of("seq")?,
                cause: tag("cause")?,
            },
            "bundle_evict" => ObsEvent::BundleEvict {
                author: author()?,
                seq: u64of("seq")?,
                cause: tag("cause")?,
            },
            "store_evict" => ObsEvent::StoreEvict {
                count: usizeof("count")?,
            },
            "want_sent" => ObsEvent::WantSent {
                peer: u32of("peer")?,
                authors: usizeof("authors")?,
                chunks: usizeof("chunks")?,
            },
            "served" => ObsEvent::Served {
                peer: u32of("peer")?,
                bundles: usizeof("bundles")?,
                frames: usizeof("frames")?,
            },
            "contact_up" => ObsEvent::ContactUp {
                a: u32of("a")?,
                b: u32of("b")?,
            },
            "contact_down" => ObsEvent::ContactDown {
                a: u32of("a")?,
                b: u32of("b")?,
            },
            _ => return None,
        };
        Some(JournalEntry { time, node, event })
    }
}

/// The bounded event journal.
#[derive(Clone, Debug)]
pub struct Journal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    dropped: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal holding at most `capacity` entries (oldest are
    /// dropped first once full).
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest when at capacity.
    pub fn push(&mut self, entry: JournalEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity pressure.
    ///
    /// Nonzero means the retained window is *not* the whole run:
    /// downstream analysis (see [`crate::provenance`]) must report
    /// `JournalTruncated` instead of inferring causes from a partial
    /// record.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum entries this ring retains before dropping the oldest.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders every retained entry as JSONL (one entry per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 96);
        for e in &self.entries {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Retained entry counts per event kind, sorted by kind.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            *map.entry(e.event.kind()).or_insert(0u64) += 1;
        }
        map.into_iter().collect()
    }

    /// Bundle-reject counts per cause, sorted by cause.
    pub fn reject_causes(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            if let ObsEvent::BundleReject { cause, .. } = e.event {
                *map.entry(cause).or_insert(0u64) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Session-close counts per reason, sorted by reason.
    pub fn close_reasons(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            if let ObsEvent::SessionClose { reason, .. } = e.event {
                *map.entry(reason).or_insert(0u64) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Total bundles evicted across all retained [`ObsEvent::StoreEvict`]
    /// entries.
    pub fn evicted_total(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                ObsEvent::StoreEvict { count } => Some(count as u64),
                _ => None,
            })
            .sum()
    }
}

/// A shared handle onto one [`Journal`]: every node of a run pushes
/// into the same buffer, preserving the global event order the event
/// loop produced.
///
/// The mutex is uncontended in the (single-threaded) event loops; it
/// exists so the handle is `Send + Sync`, which `experiments::sweep`'s
/// scoped threads require.
#[derive(Clone, Debug, Default)]
pub struct JournalHandle(Arc<Mutex<Journal>>);

impl JournalHandle {
    /// Creates a handle onto a fresh journal with the default capacity.
    pub fn new() -> JournalHandle {
        JournalHandle::default()
    }

    /// Creates a handle onto a fresh journal holding `capacity` entries.
    pub fn with_capacity(capacity: usize) -> JournalHandle {
        JournalHandle(Arc::new(Mutex::new(Journal::with_capacity(capacity))))
    }

    /// Appends an entry.
    pub fn push(&self, entry: JournalEntry) {
        self.0.lock().expect("journal lock").push(entry);
    }

    /// An owned copy of the journal's current contents.
    pub fn snapshot(&self) -> Journal {
        self.0.lock().expect("journal lock").clone()
    }
}

/// A per-node recording scope: a [`JournalHandle`] bound to one node
/// id, handed to that node's middleware so its events carry the right
/// attribution without the middleware knowing about driver topology.
#[derive(Clone, Debug)]
pub struct NodeObs {
    /// The node id stamped onto every event this scope records.
    pub node: u32,
    journal: JournalHandle,
}

impl NodeObs {
    /// Binds `journal` to `node`.
    pub fn new(node: u32, journal: JournalHandle) -> NodeObs {
        NodeObs { node, journal }
    }

    /// Records `event` at `time`, attributed to this scope's node.
    #[inline]
    pub fn record(&self, time: SimTime, event: ObsEvent) {
        self.journal.push(JournalEntry {
            time,
            node: self.node,
            event,
        });
    }

    /// The shared journal this scope feeds.
    pub fn journal(&self) -> &JournalHandle {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut j = Journal::with_capacity(2);
        for i in 0..4u32 {
            j.push(JournalEntry {
                time: t(i as u64),
                node: i,
                event: ObsEvent::ContactUp { a: i, b: i + 1 },
            });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.entries().next().unwrap().node, 2);
    }

    #[test]
    fn jsonl_shape() {
        let e = JournalEntry {
            time: t(1500),
            node: 3,
            event: ObsEvent::BundleReject {
                from: 9,
                author: 0xab,
                seq: 7,
                cause: "equivocation",
            },
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t_ms":1500,"node":3,"event":"bundle_reject","from":9,"author":"000000000000000000000000000000ab","seq":7,"cause":"equivocation"}"#
        );
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let author = author_tag(b"alice-0001");
        let events = vec![
            ObsEvent::SessionOpen {
                peer: 4,
                initiated: true,
            },
            ObsEvent::SessionClose {
                peer: 4,
                reason: "out_of_range",
            },
            ObsEvent::BundlePost { author, seq: 1 },
            ObsEvent::BundleAccept {
                from: 2,
                author,
                seq: 1,
                hops: 3,
                stored: false,
                carried: 17,
            },
            ObsEvent::BundleDuplicate {
                from: 2,
                author,
                seq: 1,
            },
            ObsEvent::BundleReject {
                from: 2,
                author,
                seq: 1,
                cause: "verify_failed",
            },
            ObsEvent::BundleEvict {
                author,
                seq: 1,
                cause: "capacity",
            },
            ObsEvent::StoreEvict { count: 9 },
            ObsEvent::WantSent {
                peer: 4,
                authors: 2,
                chunks: 5,
            },
            ObsEvent::Served {
                peer: 4,
                bundles: 11,
                frames: 1,
            },
            ObsEvent::ContactUp { a: 0, b: 1 },
            ObsEvent::ContactDown { a: 0, b: 1 },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let entry = JournalEntry {
                time: t(100 + i as u64),
                node: i as u32,
                event,
            };
            assert_eq!(
                JournalEntry::from_jsonl(&entry.to_jsonl()),
                Some(entry),
                "variant {i} must round-trip"
            );
        }
        assert_eq!(JournalEntry::from_jsonl("not json"), None);
        assert_eq!(
            JournalEntry::from_jsonl(r#"{"t_ms":1,"node":0,"event":"mystery"}"#),
            None
        );
    }

    #[test]
    fn aggregations() {
        let handle = JournalHandle::new();
        let obs = NodeObs::new(1, handle.clone());
        obs.record(
            t(0),
            ObsEvent::BundleReject {
                from: 2,
                author: 1,
                seq: 1,
                cause: "verify_failed",
            },
        );
        obs.record(
            t(1),
            ObsEvent::BundleReject {
                from: 2,
                author: 1,
                seq: 2,
                cause: "verify_failed",
            },
        );
        obs.record(t(2), ObsEvent::StoreEvict { count: 5 });
        obs.record(
            t(3),
            ObsEvent::SessionClose {
                peer: 2,
                reason: "done",
            },
        );
        let j = handle.snapshot();
        assert_eq!(j.reject_causes(), vec![("verify_failed", 2)]);
        assert_eq!(j.close_reasons(), vec![("done", 1)]);
        assert_eq!(j.evicted_total(), 5);
        assert_eq!(j.counts_by_kind().len(), 3);
        assert_eq!(j.to_jsonl().lines().count(), 4);
    }
}
