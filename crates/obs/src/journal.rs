//! The structured event journal: a bounded ring buffer of
//! sim-time-stamped [`ObsEvent`]s — the per-run "flight recorder".
//!
//! Every entry carries the node that emitted it and the [`SimTime`] at
//! which it happened, so journal contents are fully deterministic:
//! replaying a recorded run with observers attached produces the same
//! entries in the same order. When the buffer fills, the *oldest*
//! entries are dropped (and counted), keeping the tail of the run —
//! the part post-mortems care about.

use sos_sim::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default journal capacity (entries) when none is given.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One structured observability event.
///
/// Variants mirror the decision points of the middleware and driver:
/// session lifecycle, the `receive_bundle` accept/duplicate/reject
/// outcome (with cause), store eviction, the sync protocol's want/serve
/// exchange, and contact up/down edges from the mobility layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A secure session reached the established state.
    SessionOpen {
        /// Peer node id.
        peer: u32,
        /// `true` when this node initiated the handshake.
        initiated: bool,
    },
    /// A session ended.
    SessionClose {
        /// Peer node id.
        peer: u32,
        /// Why it closed (`"done"`, `"out_of_range"`,
        /// `"protocol_error"`, `"security_failure"`, `"send_failure"`).
        reason: &'static str,
    },
    /// A received bundle was verified and stored.
    BundleAccept {
        /// Sending peer.
        from: u32,
        /// Bundles now carried after the accept.
        carried: usize,
    },
    /// A received bundle was already carried (benign duplicate).
    BundleDuplicate {
        /// Sending peer.
        from: u32,
    },
    /// A received bundle was rejected.
    BundleReject {
        /// Sending peer.
        from: u32,
        /// Why (`"forged_duplicate"`, `"equivocation"`,
        /// `"verify_failed"`).
        cause: &'static str,
    },
    /// The store evicted bundles (TTL expiry or capacity pressure).
    StoreEvict {
        /// How many bundles were evicted in this sweep.
        count: usize,
    },
    /// A want (sync request) was sent to a peer.
    WantSent {
        /// Peer node id.
        peer: u32,
        /// Authors covered by the want.
        authors: usize,
        /// Sequence-range chunks requested.
        chunks: usize,
    },
    /// A peer's want was served.
    Served {
        /// Peer node id.
        peer: u32,
        /// Bundles shipped.
        bundles: usize,
        /// Sync frames used.
        frames: usize,
    },
    /// A contact (radio-range edge) came up between two nodes.
    ContactUp {
        /// First node id.
        a: u32,
        /// Second node id.
        b: u32,
    },
    /// A contact went down.
    ContactDown {
        /// First node id.
        a: u32,
        /// Second node id.
        b: u32,
    },
}

impl ObsEvent {
    /// A short stable kind tag (used for JSONL and aggregation).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::SessionOpen { .. } => "session_open",
            ObsEvent::SessionClose { .. } => "session_close",
            ObsEvent::BundleAccept { .. } => "bundle_accept",
            ObsEvent::BundleDuplicate { .. } => "bundle_duplicate",
            ObsEvent::BundleReject { .. } => "bundle_reject",
            ObsEvent::StoreEvict { .. } => "store_evict",
            ObsEvent::WantSent { .. } => "want_sent",
            ObsEvent::Served { .. } => "served",
            ObsEvent::ContactUp { .. } => "contact_up",
            ObsEvent::ContactDown { .. } => "contact_down",
        }
    }

    fn fields_jsonl(&self, out: &mut String) {
        match self {
            ObsEvent::SessionOpen { peer, initiated } => {
                let _ = write!(out, r#","peer":{peer},"initiated":{initiated}"#);
            }
            ObsEvent::SessionClose { peer, reason } => {
                let _ = write!(out, r#","peer":{peer},"reason":"{reason}""#);
            }
            ObsEvent::BundleAccept { from, carried } => {
                let _ = write!(out, r#","from":{from},"carried":{carried}"#);
            }
            ObsEvent::BundleDuplicate { from } => {
                let _ = write!(out, r#","from":{from}"#);
            }
            ObsEvent::BundleReject { from, cause } => {
                let _ = write!(out, r#","from":{from},"cause":"{cause}""#);
            }
            ObsEvent::StoreEvict { count } => {
                let _ = write!(out, r#","count":{count}"#);
            }
            ObsEvent::WantSent {
                peer,
                authors,
                chunks,
            } => {
                let _ = write!(
                    out,
                    r#","peer":{peer},"authors":{authors},"chunks":{chunks}"#
                );
            }
            ObsEvent::Served {
                peer,
                bundles,
                frames,
            } => {
                let _ = write!(
                    out,
                    r#","peer":{peer},"bundles":{bundles},"frames":{frames}"#
                );
            }
            ObsEvent::ContactUp { a, b } | ObsEvent::ContactDown { a, b } => {
                let _ = write!(out, r#","a":{a},"b":{b}"#);
            }
        }
    }
}

/// One journal entry: when, who, what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sim time the event happened.
    pub time: SimTime,
    /// Node that emitted it.
    pub node: u32,
    /// The event itself.
    pub event: ObsEvent,
}

impl JournalEntry {
    /// Renders the entry as one JSONL line (no trailing newline).
    ///
    /// All field values are numbers, booleans, or `&'static str` tags
    /// from a fixed vocabulary, so no escaping is required.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"t_ms":{},"node":{},"event":"{}""#,
            self.time.as_millis(),
            self.node,
            self.event.kind()
        );
        self.event.fields_jsonl(&mut out);
        out.push('}');
        out
    }
}

/// The bounded event journal.
#[derive(Clone, Debug)]
pub struct Journal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    dropped: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal holding at most `capacity` entries (oldest are
    /// dropped first once full).
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest when at capacity.
    pub fn push(&mut self, entry: JournalEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders every retained entry as JSONL (one entry per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 96);
        for e in &self.entries {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Retained entry counts per event kind, sorted by kind.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            *map.entry(e.event.kind()).or_insert(0u64) += 1;
        }
        map.into_iter().collect()
    }

    /// Bundle-reject counts per cause, sorted by cause.
    pub fn reject_causes(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            if let ObsEvent::BundleReject { cause, .. } = e.event {
                *map.entry(cause).or_insert(0u64) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Session-close counts per reason, sorted by reason.
    pub fn close_reasons(&self) -> Vec<(&'static str, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            if let ObsEvent::SessionClose { reason, .. } = e.event {
                *map.entry(reason).or_insert(0u64) += 1;
            }
        }
        map.into_iter().collect()
    }

    /// Total bundles evicted across all retained [`ObsEvent::StoreEvict`]
    /// entries.
    pub fn evicted_total(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                ObsEvent::StoreEvict { count } => Some(count as u64),
                _ => None,
            })
            .sum()
    }
}

/// A shared handle onto one [`Journal`]: every node of a run pushes
/// into the same buffer, preserving the global event order the event
/// loop produced.
///
/// The mutex is uncontended in the (single-threaded) event loops; it
/// exists so the handle is `Send + Sync`, which `experiments::sweep`'s
/// scoped threads require.
#[derive(Clone, Debug, Default)]
pub struct JournalHandle(Arc<Mutex<Journal>>);

impl JournalHandle {
    /// Creates a handle onto a fresh journal with the default capacity.
    pub fn new() -> JournalHandle {
        JournalHandle::default()
    }

    /// Creates a handle onto a fresh journal holding `capacity` entries.
    pub fn with_capacity(capacity: usize) -> JournalHandle {
        JournalHandle(Arc::new(Mutex::new(Journal::with_capacity(capacity))))
    }

    /// Appends an entry.
    pub fn push(&self, entry: JournalEntry) {
        self.0.lock().expect("journal lock").push(entry);
    }

    /// An owned copy of the journal's current contents.
    pub fn snapshot(&self) -> Journal {
        self.0.lock().expect("journal lock").clone()
    }
}

/// A per-node recording scope: a [`JournalHandle`] bound to one node
/// id, handed to that node's middleware so its events carry the right
/// attribution without the middleware knowing about driver topology.
#[derive(Clone, Debug)]
pub struct NodeObs {
    /// The node id stamped onto every event this scope records.
    pub node: u32,
    journal: JournalHandle,
}

impl NodeObs {
    /// Binds `journal` to `node`.
    pub fn new(node: u32, journal: JournalHandle) -> NodeObs {
        NodeObs { node, journal }
    }

    /// Records `event` at `time`, attributed to this scope's node.
    #[inline]
    pub fn record(&self, time: SimTime, event: ObsEvent) {
        self.journal.push(JournalEntry {
            time,
            node: self.node,
            event,
        });
    }

    /// The shared journal this scope feeds.
    pub fn journal(&self) -> &JournalHandle {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut j = Journal::with_capacity(2);
        for i in 0..4u32 {
            j.push(JournalEntry {
                time: t(i as u64),
                node: i,
                event: ObsEvent::ContactUp { a: i, b: i + 1 },
            });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.entries().next().unwrap().node, 2);
    }

    #[test]
    fn jsonl_shape() {
        let e = JournalEntry {
            time: t(1500),
            node: 3,
            event: ObsEvent::BundleReject {
                from: 9,
                cause: "equivocation",
            },
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t_ms":1500,"node":3,"event":"bundle_reject","from":9,"cause":"equivocation"}"#
        );
    }

    #[test]
    fn aggregations() {
        let handle = JournalHandle::new();
        let obs = NodeObs::new(1, handle.clone());
        obs.record(
            t(0),
            ObsEvent::BundleReject {
                from: 2,
                cause: "verify_failed",
            },
        );
        obs.record(
            t(1),
            ObsEvent::BundleReject {
                from: 2,
                cause: "verify_failed",
            },
        );
        obs.record(t(2), ObsEvent::StoreEvict { count: 5 });
        obs.record(
            t(3),
            ObsEvent::SessionClose {
                peer: 2,
                reason: "done",
            },
        );
        let j = handle.snapshot();
        assert_eq!(j.reject_causes(), vec![("verify_failed", 2)]);
        assert_eq!(j.close_reasons(), vec![("done", 1)]);
        assert_eq!(j.evicted_total(), 5);
        assert_eq!(j.counts_by_kind().len(), 3);
        assert_eq!(j.to_jsonl().lines().count(), 4);
    }
}
