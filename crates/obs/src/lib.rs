//! # sos-obs
//!
//! The observability layer of the SOS reproduction: the instrumentation
//! the paper's *in vivo* methodology presupposes (per-node, per-session,
//! per-pipeline-stage attribution of delivery, drops, and overhead)
//! built as three small, zero-external-dependency pieces:
//!
//! * [`registry`] — named monotonic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s with p50/p90/p99 extraction. Handles
//!   are plain atomic cells behind `Arc`s: incrementing takes no lock
//!   and is cheap enough for the middleware's hot paths (the
//!   `sos-bench --bench obs` gate holds total instrumentation overhead
//!   to ≤ 5% on the 200-bundle encounter and trace-replay workloads).
//! * [`journal`] — a bounded ring buffer of sim-time-stamped structured
//!   [`ObsEvent`]s (session open/close with reason, bundle
//!   accept/duplicate/reject with cause, store evictions, want/serve
//!   decisions, contact up/down) scoped per node, with JSONL export:
//!   every experiment's queryable "flight recorder".
//! * [`profile`] — span-style self-profiling around the driver tick,
//!   encounter sync, the `receive_bundle` verify pipeline, the
//!   codec/import paths, and the sharded contact engine's
//!   partition/step/handoff/merge phases, aggregated into a
//!   calls/total/mean/max table.
//! * [`provenance`] — the cross-node layer on top of [`journal`]: merge
//!   every node's entries into one deterministically ordered
//!   [`GlobalTimeline`], reconstruct per-bundle propagation DAGs
//!   ([`BundlePath`]: author → relay → … → destination, with
//!   wait-vs-transfer latency splits per hop), and classify every
//!   undelivered bundle with exactly one [`DropCause`] (delivery
//!   forensics).
//!
//! ## Determinism rules
//!
//! Everything that feeds *results* is deterministic: journal timestamps
//! are [`sos_sim::SimTime`], event order is inherited from the
//! (deterministic) event loops that emit them, and attaching observers
//! never draws randomness or reorders work — the PR 4 record→replay
//! byte-identity guarantees hold with instrumentation enabled. The one
//! exception is the [`profile`] module's *durations*, which are
//! wall-clock self-measurement (call **counts** stay deterministic);
//! profiles are reported for humans and never compared byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod profile;
pub mod provenance;
pub mod registry;

pub use journal::{author_tag, Journal, JournalEntry, JournalHandle, NodeObs, ObsEvent};
pub use profile::{Profile, StageStats};
pub use provenance::{
    Arrival, BundleKey, BundlePath, Contact, DropCause, Forensics, GlobalTimeline, Provenance,
    SchemeTraits, TimelineEvent, Verdict,
};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
