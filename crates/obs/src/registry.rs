//! The metrics registry: named monotonic counters, gauges, and
//! log-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared
//! atomic cells: incrementing is a single relaxed atomic op, no lock is
//! taken on any hot path, and handles stay valid (and cheap) whether or
//! not they are registered. The [`Registry`] itself is only consulted
//! for registration and for [`Registry::snapshot`] — both cold paths.
//!
//! All cells use relaxed ordering: metrics are written from the
//! (single-threaded) event loops and read after a run completes, so no
//! cross-thread ordering is required, only atomicity.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotonic counter: a shared `u64` cell incremented without locks.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a shared signed cell that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, and bucket 64 tops out at
/// `u64::MAX`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram of `u64` samples with quantile extraction.
///
/// Recording is lock-free (three relaxed atomic adds and an atomic
/// max). Quantiles are resolved to the **upper bound of the bucket**
/// holding the nearest-rank sample, so any reported quantile is within
/// one power-of-two bucket of the exact order statistic — the property
/// the oracle tests in `tests/histogram_props.rs` pin down.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Creates a detached histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value bucket `i` holds.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let cells = &*self.0;
        cells.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        cells.count.fetch_add(1, Relaxed);
        // Wrapping on overflow; the sum only feeds the (informational)
        // mean in the snapshot table.
        cells.sum.fetch_add(v, Relaxed);
        cells.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Folds another histogram's buckets into this one (bucket-wise
    /// addition; `max` takes the larger). Merging is associative and
    /// commutative up to the merged snapshot.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.0.buckets[i].load(Relaxed);
            if n > 0 {
                self.0.buckets[i].fetch_add(n, Relaxed);
            }
        }
        self.0.count.fetch_add(other.0.count.load(Relaxed), Relaxed);
        self.0.sum.fetch_add(other.0.sum.load(Relaxed), Relaxed);
        self.0.max.fetch_max(other.0.max.load(Relaxed), Relaxed);
    }

    /// The value at quantile `q ∈ [0, 1]` (nearest-rank, resolved to
    /// the containing bucket's upper bound); `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.0.buckets[i].load(Relaxed);
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(u64::MAX) // unreachable unless counts raced; stay total
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let buckets = (0..BUCKETS)
            .filter_map(|i| {
                let n = self.0.buckets[i].load(Relaxed);
                (n > 0).then_some((Self::bucket_upper(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Relaxed),
            max: self.0.max.load(Relaxed),
            buckets,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Non-empty buckets as `(bucket upper bound, sample count)`.
    pub buckets: Vec<(u64, u64)>,
    /// Median (bucket-resolved), `None` when empty.
    pub p50: Option<u64>,
    /// 90th percentile (bucket-resolved).
    pub p90: Option<u64>,
    /// 99th percentile (bucket-resolved).
    pub p99: Option<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A name → metric map. Cloning shares the underlying map, so one
/// registry can be handed to every node of a run and snapshotted once
/// at the end.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("registry lock");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it if
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Adopts an existing counter cell under `name` (the registry and
    /// the owner share the same cell afterwards) — how pre-existing
    /// stat structs become registry-backed views without moving their
    /// cells.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        let mut map = self.metrics.lock().expect("registry lock");
        map.insert(name.to_string(), Metric::Counter(counter.clone()));
    }

    /// Adopts an existing gauge cell under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        let mut map = self.metrics.lock().expect("registry lock");
        map.insert(name.to_string(), Metric::Gauge(gauge.clone()));
    }

    /// Adopts an existing histogram under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        let mut map = self.metrics.lock().expect("registry lock");
        map.insert(name.to_string(), Metric::Histogram(histogram.clone()));
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("registry lock");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned text table (counters and
    /// gauges one per line, histograms as count/mean/p50/p90/p99/max).
    pub fn table(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<44} {v:>12}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<44} {v:>12}");
        }
        for (name, h) in &self.histograms {
            let mean = h.mean().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {name:<44} n={} mean={mean:.1} p50={} p90={} p99={} max={}",
                h.count,
                h.p50.unwrap_or(0),
                h.p90.unwrap_or(0),
                h.p99.unwrap_or(0),
                h.max,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("a/hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cell.
        assert_eq!(reg.counter("a/hits").get(), 5);
        let g = reg.gauge("a/level");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a/hits"], 5);
        assert_eq!(snap.gauges["a/level"], 5);
        assert!(snap.table().contains("a/hits"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn adopted_cell_is_shared() {
        let reg = Registry::new();
        let mine = Counter::new();
        mine.add(3);
        reg.register_counter("node0/posts", &mine);
        mine.inc();
        assert_eq!(reg.snapshot().counters["node0/posts"], 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);

        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // Rank 3 of 5 at q=0.5 is the sample 3 → bucket upper 3.
        assert_eq!(h.quantile(0.5), Some(3));
        // q=1.0 lands in 1000's bucket [512, 1023].
        assert_eq!(h.quantile(1.0), Some(1023));
        let snap = h.snapshot();
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.mean(), Some(1106.0 / 5.0));
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(0);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, 500);
        assert_eq!(snap.buckets.len(), 3);
    }
}
