//! The batch scenario runner: many independent replicas across threads.
//!
//! Routing-scheme comparisons (the paper's Fig. 4 family) are
//! embarrassingly parallel — every `(scheme, seed)` replica is a pure
//! function of its inputs. [`run_replicas`] fans a work list out over
//! scoped OS threads and returns the results in input order, so sweeps
//! over tens of thousands of simulated nodes use every core without
//! any shared mutable state inside a replica.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job` once per element of `inputs` across up to `threads`
/// worker threads, returning outputs in input order.
///
/// `threads == 0` means "one per available core". Panics in a job are
/// propagated (the whole batch panics), matching the behavior of
/// running the jobs inline.
pub fn run_replicas<I, T, F>(inputs: Vec<I>, threads: usize, job: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let threads = threads.min(inputs.len()).max(1);
    if threads <= 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| job(i, input))
            .collect();
    }

    let total = inputs.len();
    // Hand out work by index so results keep input order; inputs are
    // moved into per-slot Options so workers can take ownership.
    let work: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let input = work[index]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each slot is taken once");
                let output = job(index, input);
                *results[index].lock().expect("result slot lock") = Some(output);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let outputs = run_replicas(inputs, 8, |index, x| {
            assert_eq!(index as u64, x);
            x * x
        });
        assert_eq!(outputs, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_and_auto_thread_modes() {
        assert_eq!(run_replicas(vec![1, 2, 3], 1, |_, x| x + 1), vec![2, 3, 4]);
        assert_eq!(run_replicas(vec![5], 0, |_, x| x), vec![5]);
        assert_eq!(
            run_replicas(Vec::<u8>::new(), 4, |_, x| x),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn more_threads_than_work() {
        let outputs = run_replicas(vec![10, 20], 16, |_, x| x / 10);
        assert_eq!(outputs, vec![1, 2]);
    }
}
