//! # sos-engine
//!
//! The large-scale contact-simulation subsystem: a spatial-hash
//! neighbor index and an event-driven kernel that together replace the
//! all-pairs O(n²)-per-tick contact scan of [`sos_sim::World`].
//!
//! The paper's evaluation (Baker et al., ICDCS 2017) compares routing
//! schemes over encounter workloads; its companion platform exists to
//! run *many* schemes over *many* workloads. Both need contact
//! detection that scales past toy populations. This crate provides it:
//!
//! * [`grid`] — a uniform-grid spatial hash with cell size equal to the
//!   radio range, updated incrementally as nodes move; range queries
//!   touch only the 3×3 cell neighborhood instead of every pair.
//! * [`kernel`] — [`GridContactEngine`], an event-driven simulation
//!   kernel on [`sos_sim::EventQueue`]: each node schedules its own
//!   re-index events and *skips its dormant spans entirely* (the paper
//!   notes nodes are stationary 5–8 h/day), so work per tick is
//!   proportional to nodes actually moving times local density.
//! * [`shard`] — [`ShardedContactEngine`], the kernel partitioned into
//!   K strips stepped by scoped threads with an epoch-barrier
//!   boundary-handoff protocol; its merged stream is byte-identical to
//!   the single loop, so one world can use every core.
//! * [`runner`] — a scoped-thread batch runner that executes many
//!   independent scenario replicas in parallel and returns their
//!   results in order, for scheme-comparison sweeps.
//!
//! The kernel implements [`sos_sim::ContactSource`], the trait the
//! experiment driver consumes, and is *exactly equivalent* to the naive
//! scan at tick resolution: same pairs, same up/down times, same
//! distances (verified by the equivalence property tests in
//! `tests/equivalence.rs`).
//!
//! ```
//! use sos_engine::GridContactEngine;
//! use sos_sim::mobility::trace::Trajectory;
//! use sos_sim::{ContactSource, Point, SimDuration, SimTime};
//!
//! let a = Trajectory::stationary(Point::new(0.0, 0.0));
//! let b = Trajectory::stationary(Point::new(30.0, 0.0));
//! let engine = GridContactEngine::new(vec![a, b], 60.0, SimDuration::from_secs(30));
//! let intervals = engine.contact_intervals(SimTime::ZERO, SimTime::from_hours(1));
//! assert_eq!(intervals.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod kernel;
pub mod runner;
pub mod shard;

pub use grid::UniformGrid;
pub use kernel::GridContactEngine;
pub use runner::run_replicas;
pub use shard::{ShardConfig, ShardedContactEngine};
