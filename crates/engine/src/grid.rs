//! A uniform-grid spatial hash over node positions.
//!
//! The plane is divided into square cells whose side is the radio
//! range. Any pair of nodes within range therefore lies in the same
//! cell or in horizontally/vertically/diagonally adjacent cells, so a
//! candidate query inspects at most the 3×3 block around a position —
//! O(local density) instead of O(n).

use sos_sim::Point;
use std::collections::HashMap;

/// A cell coordinate (floor-divided position).
pub type Cell = (i64, i64);

/// The spatial hash: node indices bucketed by grid cell.
#[derive(Clone, Debug)]
pub struct UniformGrid {
    cell_m: f64,
    cells: HashMap<Cell, Vec<usize>>,
    /// Where each node currently is (`None` until inserted).
    node_cell: Vec<Option<Cell>>,
}

impl UniformGrid {
    /// Creates an empty grid for `node_count` nodes with `cell_m`-metre
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite.
    pub fn new(node_count: usize, cell_m: f64) -> UniformGrid {
        assert!(
            cell_m > 0.0 && cell_m.is_finite(),
            "cell size must be positive and finite"
        );
        UniformGrid {
            cell_m,
            cells: HashMap::new(),
            node_cell: vec![None; node_count],
        }
    }

    /// The cell containing `p`.
    pub fn cell_of(&self, p: Point) -> Cell {
        (
            (p.x / self.cell_m).floor() as i64,
            (p.y / self.cell_m).floor() as i64,
        )
    }

    /// Inserts or moves `node` to the cell containing `p`. Returns
    /// `true` if the node changed cell (or was newly inserted).
    pub fn update(&mut self, node: usize, p: Point) -> bool {
        let cell = self.cell_of(p);
        match self.node_cell[node] {
            Some(old) if old == cell => false,
            Some(old) => {
                self.remove_from_cell(node, old);
                self.cells.entry(cell).or_default().push(node);
                self.node_cell[node] = Some(cell);
                true
            }
            None => {
                self.cells.entry(cell).or_default().push(node);
                self.node_cell[node] = Some(cell);
                true
            }
        }
    }

    fn remove_from_cell(&mut self, node: usize, cell: Cell) {
        let bucket = self.cells.get_mut(&cell).expect("node's cell exists");
        let pos = bucket
            .iter()
            .position(|&n| n == node)
            .expect("node in its cell");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.cells.remove(&cell);
        }
    }

    /// Appends every node in the 3×3 cell block around `p` to `out`
    /// (including, possibly, nodes exactly at range boundary in
    /// diagonal cells; callers filter by true distance).
    pub fn neighbors_into(&self, p: Point, out: &mut Vec<usize>) {
        let (cx, cy) = self.cell_of(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }

    /// The nodes in the 3×3 cell block around `p`.
    ///
    /// Convenience wrapper over [`UniformGrid::neighbors_into`] that
    /// allocates a fresh `Vec` per call. Every hot-path query (the
    /// single-loop and sharded kernels) goes through `neighbors_into`
    /// with a reused scratch buffer; this variant is for tests and
    /// one-off queries only.
    pub fn neighbors(&self, p: Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_into(p, &mut out);
        out
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of inserted nodes.
    pub fn len(&self) -> usize {
        self.node_cell.iter().filter(|c| c.is_some()).count()
    }

    /// True if no node has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_tracks_cell_changes() {
        let mut grid = UniformGrid::new(2, 10.0);
        assert!(grid.update(0, Point::new(5.0, 5.0)));
        // Same cell: no structural change.
        assert!(!grid.update(0, Point::new(9.0, 1.0)));
        // Crosses a cell boundary.
        assert!(grid.update(0, Point::new(11.0, 1.0)));
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.occupied_cells(), 1);
    }

    #[test]
    fn neighbors_cover_adjacent_cells_only() {
        let mut grid = UniformGrid::new(4, 10.0);
        grid.update(0, Point::new(5.0, 5.0)); // cell (0,0)
        grid.update(1, Point::new(15.0, 5.0)); // cell (1,0) — adjacent
        grid.update(2, Point::new(25.0, 5.0)); // cell (2,0) — not adjacent
        grid.update(3, Point::new(-5.0, -5.0)); // cell (-1,-1) — adjacent
        let mut near = grid.neighbors(Point::new(5.0, 5.0));
        near.sort_unstable();
        assert_eq!(near, vec![0, 1, 3]);
    }

    #[test]
    fn negative_coordinates_floor_correctly() {
        let grid = UniformGrid::new(0, 10.0);
        assert_eq!(grid.cell_of(Point::new(-0.5, -10.5)), (-1, -2));
        assert_eq!(grid.cell_of(Point::new(0.0, 0.0)), (0, 0));
    }

    #[test]
    fn in_range_pairs_always_in_adjacent_cells() {
        // The geometric guarantee the kernel relies on: if two points
        // are within `cell_m` of each other, their cells differ by at
        // most 1 in each axis.
        let grid = UniformGrid::new(0, 60.0);
        for i in 0..100 {
            let x = i as f64 * 37.3 - 1800.0;
            let p = Point::new(x, x * 0.7);
            let q = Point::new(x + 59.9, x * 0.7 + 0.1);
            let (ax, ay) = grid.cell_of(p);
            let (bx, by) = grid.cell_of(q);
            assert!((ax - bx).abs() <= 1 && (ay - by).abs() <= 1);
        }
    }
}
