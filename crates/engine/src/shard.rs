//! The sharded contact kernel: one world stepped across all cores.
//!
//! [`GridContactEngine`](crate::kernel::GridContactEngine) is a single
//! event-driven loop; [`ShardedContactEngine`] runs the *same*
//! computation partitioned into K vertical strips of the plane, each
//! strip stepped by its own worker with its own event queue, local
//! uniform grid, and cache-linear struct-of-arrays node state
//! ([`TrajectorySet`]). The merged `ContactUp`/`ContactDown` stream is
//! **byte-identical** to the single-loop kernel — the property tests in
//! `tests/shard_equivalence.rs` assert it event for event, bit for bit.
//!
//! # Epochs and the boundary-handoff protocol
//!
//! Time is divided into **epochs** of `epoch_ticks` discovery ticks,
//! aligned to the global tick grid. Each epoch runs three deterministic
//! steps:
//!
//! 1. **Partition.** Nodes are assigned an *owner* shard by sampled
//!    x-quantiles of their current positions (so strips track the
//!    population as it commutes). For every node the kernel computes
//!    its x-**extent** over the epoch (positions at both epoch
//!    boundaries plus every waypoint inside the window); a shard's
//!    **reach** is the hull of its owned extents inflated by the radio
//!    range `r`. A shard *hosts* every node whose extent intersects its
//!    reach — owned nodes plus a halo of potential contact partners.
//!    This is the handoff: nodes crossing a strip edge (or within a
//!    halo of it) are handed to every shard that might see them.
//! 2. **Parallel step.** Each worker replays the event-driven kernel
//!    over its hosted set for the epoch window, seeded with the open
//!    contacts among its hosted nodes. A pair `(a, b)` (`a < b`) is
//!    *emitted* only by the shard owning `a`; other shards hosting both
//!    compute the identical transitions silently. Because the owner's
//!    reach covers `extent(a) ± r`, any node able to touch `a` during
//!    the epoch is hosted there — so every transition is emitted
//!    exactly once.
//! 3. **Barrier merge.** Per-shard streams (each already in `(time, a,
//!    b)` order) are merged by a deterministic sort on `(time, a, b)` —
//!    never by map iteration — and applied to the global open-contact
//!    adjacency (sorted `Vec`s, no hashing) and stored positions,
//!    which seed the next epoch.
//!
//! # Why the streams are identical
//!
//! The single-loop kernel's stream is totally ordered by `(time, a,
//! b)`: ticks advance monotonically and within a tick candidate pairs
//! are sorted. Both kernels sample the same trajectories at the same
//! tick grid with the same `f64` arithmetic ([`TrajectorySet`] mirrors
//! `Trajectory::position_at` operation for operation), wake nodes by
//! the same schedule, and a transition for `(a, b)` depends only on the
//! two nodes' waypoints — so the owning shard reproduces exactly the
//! transitions the single loop finds, and exactly-once emission plus
//! the `(time, a, b)` merge reproduces the order.
//!
//! # Sizing K
//!
//! Each extra shard adds a halo of doubly-hosted nodes around its strip
//! edges, so K should track physical cores, not go beyond them:
//! `ShardConfig::default()` (`shards: 0`) resolves K to the available
//! parallelism. Longer epochs amortize barrier cost but widen extents
//! (more halo); the default of 32 ticks suits walking/driving speeds at
//! city scale.

use crate::grid::UniformGrid;
use crate::runner::run_replicas;
use sos_sim::mobility::soa::TrajectorySet;
use sos_sim::mobility::trace::Trajectory;
use sos_sim::world::{ContactEvent, ContactPhase, ContactSource};
use sos_sim::{EventQueue, Point, SimDuration, SimTime};
use std::cmp::Ordering;

/// Sharding parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of shards (vertical strips); `0` = one per available
    /// core.
    pub shards: usize,
    /// Epoch length in discovery ticks (at least 1). Longer epochs
    /// amortize barrier cost; shorter ones shrink the halo.
    pub epoch_ticks: u64,
    /// Worker threads for the parallel phase; `0` = one per core.
    pub threads: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 0,
            epoch_ticks: 32,
            threads: 0,
        }
    }
}

/// The sharded, epoch-barrier contact source.
///
/// Produces a contact stream byte-identical to
/// [`GridContactEngine`](crate::kernel::GridContactEngine) for the same
/// trajectories, range, and tick — for any shard count.
#[derive(Clone, Debug)]
pub struct ShardedContactEngine {
    set: TrajectorySet,
    range_m: f64,
    tick: SimDuration,
    config: ShardConfig,
}

impl ShardedContactEngine {
    /// Creates an engine over struct-of-arrays trajectories.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty, `range_m` is not positive, `tick` is
    /// zero, or `config.epoch_ticks` is zero — the same constructor
    /// contract as the single-loop kernel.
    pub fn new(
        set: TrajectorySet,
        range_m: f64,
        tick: SimDuration,
        config: ShardConfig,
    ) -> ShardedContactEngine {
        assert!(set.node_count() > 0, "engine needs nodes");
        assert!(range_m > 0.0, "range must be positive");
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        assert!(config.epoch_ticks > 0, "epochs must be at least one tick");
        ShardedContactEngine {
            set,
            range_m,
            tick,
            config,
        }
    }

    /// Convenience constructor from per-node [`Trajectory`] values.
    pub fn from_trajectories(
        trajectories: &[Trajectory],
        range_m: f64,
        tick: SimDuration,
        config: ShardConfig,
    ) -> ShardedContactEngine {
        ShardedContactEngine::new(
            TrajectorySet::from_trajectories(trajectories),
            range_m,
            tick,
            config,
        )
    }

    /// The discovery tick.
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// The sharding configuration.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// The node state the engine steps.
    pub fn trajectory_set(&self) -> &TrajectorySet {
        &self.set
    }

    /// The resolved shard count (`config.shards`, or one per available
    /// core when 0).
    pub fn shards(&self) -> usize {
        if self.config.shards > 0 {
            self.config.shards
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Streams the contact events of `[start, end]` epoch by epoch.
    ///
    /// `f` is called once per epoch with that epoch's merged, globally
    /// ordered slice of the stream; the concatenation over all epochs
    /// is byte-identical to
    /// `GridContactEngine::contact_events(start, end)`. Use this
    /// instead of [`ContactSource::contact_events`] when the full
    /// stream would not fit in memory (a 1M-node day is tens of
    /// millions of events).
    pub fn for_each_epoch(&self, start: SimTime, end: SimTime, mut f: impl FnMut(&[ContactEvent])) {
        let _span = sos_obs::profile::span("engine/sharded_contact_events");
        if start > end {
            return;
        }
        let n = self.set.node_count();
        let k = self.shards();
        let epoch_dur = SimDuration::from_millis(self.tick.as_millis() * self.config.epoch_ticks);

        // Stored positions at the current epoch boundary. At every tick
        // boundary the single-loop kernel's stored positions equal the
        // sampled positions, so maintaining these across epochs (from
        // the workers' write-backs) reproduces its state exactly.
        let mut positions: Vec<Point> = (0..n).map(|i| self.set.position_at(i, start)).collect();
        // Global open-contact adjacency: sorted partner lists.
        let mut open: Vec<Vec<u32>> = vec![Vec::new(); n];

        let mut epoch_start = start;
        let mut initial = true;
        loop {
            let target = epoch_start + epoch_dur;
            let epoch_end = if target > end { end } else { target };

            // -- Partition: owners, extents, reaches, hosted sets. --
            // Spans live on this (caller) thread: the profiler
            // aggregates thread-locally, so worker-side spans would be
            // lost. The partition span therefore also covers dispatch
            // setup; the step span covers the parallel workers
            // wall-clock (what the caller actually waits on).
            let partition_span = sos_obs::profile::span("engine/epoch_partition");
            let boundaries = owner_boundaries(&positions, k);
            let owner: Vec<u32> = positions
                .iter()
                .map(|p| owner_of(&boundaries, p.x))
                .collect();
            let extents = self.parallel_extents(k, epoch_start, epoch_end);
            let mut reach: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::NEG_INFINITY); k];
            for (i, &(lo, hi)) in extents.iter().enumerate() {
                let r = &mut reach[owner[i] as usize];
                r.0 = r.0.min(lo);
                r.1 = r.1.max(hi);
            }
            for r in &mut reach {
                r.0 -= self.range_m;
                r.1 += self.range_m;
            }
            let mut hosted: Vec<Vec<u32>> = vec![Vec::new(); k];
            for (i, &(lo, hi)) in extents.iter().enumerate() {
                for (s, r) in reach.iter().enumerate() {
                    if lo <= r.1 && hi >= r.0 {
                        hosted[s].push(i as u32);
                    }
                }
            }

            drop(partition_span);

            // -- Parallel step. --
            let step_span = sos_obs::profile::span("engine/epoch_step");
            let ctx = EpochCtx {
                set: &self.set,
                positions: &positions,
                open: &open,
                owner: &owner,
                range_m: self.range_m,
                tick: self.tick,
                anchor: start,
                epoch_start,
                epoch_end,
                initial,
            };
            let outputs = run_replicas(hosted, self.config.threads, |shard, hosted_s| {
                run_shard(&ctx, shard as u32, &hosted_s)
            });
            drop(step_span);

            // -- Barrier: deterministic merge + handoff state. --
            let merge_span = sos_obs::profile::span("engine/epoch_merge");
            let mut merged: Vec<ContactEvent> = Vec::new();
            for out in &outputs {
                merged.extend_from_slice(&out.events);
            }
            // Every (time, a, b) key is unique (one transition per pair
            // per tick, emitted by exactly one shard), so this sort is a
            // total, deterministic order — no map iteration anywhere.
            merged.sort_unstable_by_key(|e| (e.time, e.a, e.b));
            drop(merge_span);
            let handoff_span = sos_obs::profile::span("engine/epoch_handoff");
            for ev in &merged {
                match ev.phase {
                    ContactPhase::Up => adj_insert(&mut open, ev.a, ev.b),
                    ContactPhase::Down => adj_remove(&mut open, ev.a, ev.b),
                }
            }
            for out in &outputs {
                for &(node, p) in &out.moved {
                    positions[node as usize] = p;
                }
            }
            drop(handoff_span);
            f(&merged);

            if epoch_end >= end {
                return;
            }
            epoch_start = epoch_end;
            initial = false;
        }
    }

    /// Per-node x-extents over the epoch window, computed in parallel
    /// chunks.
    fn parallel_extents(&self, k: usize, t0: SimTime, t1: SimTime) -> Vec<(f64, f64)> {
        let n = self.set.node_count();
        let chunk = n.div_ceil(k.max(1));
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(chunk.max(1))
            .map(|lo| (lo, (lo + chunk).min(n)))
            .collect();
        run_replicas(ranges, self.config.threads, |_, (lo, hi)| {
            (lo..hi)
                .map(|i| self.set.extent_x(i, t0, t1))
                .collect::<Vec<(f64, f64)>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl ContactSource for ShardedContactEngine {
    fn node_count(&self) -> usize {
        self.set.node_count()
    }

    fn range_m(&self) -> f64 {
        self.range_m
    }

    fn position(&self, node: usize, t: SimTime) -> Point {
        self.set.position_at(node, t)
    }

    fn contact_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent> {
        let mut events = Vec::new();
        self.for_each_epoch(start, end, |epoch| events.extend_from_slice(epoch));
        events
    }
}

/// Strip boundaries from sampled x-quantiles of the current positions.
/// Sampling (stride so at most ~4096 points are sorted) keeps the
/// partition adaptive to the population drift at negligible cost, and
/// `total_cmp` keeps it total — and therefore deterministic — even for
/// pathological coordinates.
fn owner_boundaries(positions: &[Point], k: usize) -> Vec<f64> {
    if k <= 1 {
        return Vec::new();
    }
    let stride = (positions.len() / 4096).max(1);
    let mut xs: Vec<f64> = positions.iter().step_by(stride).map(|p| p.x).collect();
    xs.sort_unstable_by(f64::total_cmp);
    (1..k).map(|s| xs[s * xs.len() / k]).collect()
}

/// The owner shard of a node at `x`: the number of strip boundaries at
/// or below it.
fn owner_of(boundaries: &[f64], x: f64) -> u32 {
    boundaries.partition_point(|b| b.total_cmp(&x) != Ordering::Greater) as u32
}

fn adj_insert(adj: &mut [Vec<u32>], a: usize, b: usize) {
    if let Err(i) = adj[a].binary_search(&(b as u32)) {
        adj[a].insert(i, b as u32);
    }
    if let Err(i) = adj[b].binary_search(&(a as u32)) {
        adj[b].insert(i, a as u32);
    }
}

fn adj_remove(adj: &mut [Vec<u32>], a: usize, b: usize) {
    if let Ok(i) = adj[a].binary_search(&(b as u32)) {
        adj[a].remove(i);
    }
    if let Ok(i) = adj[b].binary_search(&(a as u32)) {
        adj[b].remove(i);
    }
}

/// Read-only state shared by all shard workers of one epoch.
struct EpochCtx<'a> {
    set: &'a TrajectorySet,
    positions: &'a [Point],
    open: &'a [Vec<u32>],
    owner: &'a [u32],
    range_m: f64,
    tick: SimDuration,
    /// Global tick-grid anchor (the window start).
    anchor: SimTime,
    epoch_start: SimTime,
    epoch_end: SimTime,
    /// Whether this epoch opens the window (emit the initial full
    /// scan at `anchor`).
    initial: bool,
}

/// One worker's epoch result.
struct ShardOutput {
    /// Emitted (owned-pair) events, in `(time, a, b)` order.
    events: Vec<ContactEvent>,
    /// Owned nodes whose stored position changed, with their position
    /// at the epoch end — the handoff write-back.
    moved: Vec<(u32, Point)>,
}

/// Replays the event-driven kernel over `hosted` for one epoch,
/// emitting only the pairs this shard owns. Mirrors
/// `GridContactEngine::contact_events` exactly: same initial scan, same
/// wake schedule, same candidate generation, same transition logic.
fn run_shard(ctx: &EpochCtx<'_>, shard: u32, hosted: &[u32]) -> ShardOutput {
    let mut out = ShardOutput {
        events: Vec::new(),
        moved: Vec::new(),
    };
    let h = hosted.len();
    if h == 0 {
        return out;
    }
    let mut pos_l: Vec<Point> = hosted.iter().map(|&g| ctx.positions[g as usize]).collect();
    let mut grid = UniformGrid::new(h, ctx.range_m);
    for (l, p) in pos_l.iter().enumerate() {
        grid.update(l, *p);
    }
    // Local open adjacency (local indices), seeded with the global open
    // pairs whose endpoints are both hosted here. A pair with an
    // unhosted endpoint cannot be owned by this shard, so dropping it
    // is exact. `hosted` ascending makes local order global order.
    let mut open_l: Vec<Vec<u32>> = vec![Vec::new(); h];
    for (la, &ga) in hosted.iter().enumerate() {
        for &gb in &ctx.open[ga as usize] {
            if let Ok(lb) = hosted.binary_search(&gb) {
                open_l[la].push(lb as u32);
            }
        }
    }

    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut scratch: Vec<usize> = Vec::new();

    if ctx.initial {
        // Initial tick at the window anchor: every in-range hosted pair
        // comes up; only owned pairs are emitted.
        for (la, p) in pos_l.iter().enumerate() {
            scratch.clear();
            grid.neighbors_into(*p, &mut scratch);
            for &lb in &scratch {
                if lb > la {
                    pairs.push((la as u32, lb as u32));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        for &(la, lb) in &pairs {
            let d = pos_l[la as usize].distance(&pos_l[lb as usize]);
            if d <= ctx.range_m {
                adj_insert(&mut open_l, la as usize, lb as usize);
                let ga = hosted[la as usize] as usize;
                if ctx.owner[ga] == shard {
                    out.events.push(ContactEvent {
                        time: ctx.anchor,
                        a: ga,
                        b: hosted[lb as usize] as usize,
                        phase: ContactPhase::Up,
                        distance_m: d,
                    });
                }
            }
        }
    }

    // Per-node wake-ups, re-derived at the epoch boundary. For every
    // hosted node this yields exactly the wake times the single-loop
    // kernel would schedule inside this window (see module docs).
    let mut queue: EventQueue<usize> = EventQueue::new();
    for (l, &g) in hosted.iter().enumerate() {
        schedule_next(ctx, &mut queue, g as usize, l, ctx.epoch_start);
    }

    let mut moved_l: Vec<usize> = Vec::new();
    while let Some(now) = queue.peek_time() {
        moved_l.clear();
        while queue.peek_time() == Some(now) {
            let (_, l) = queue.pop().expect("peeked event");
            let g = hosted[l] as usize;
            let p = ctx.set.position_at(g, now);
            if p != pos_l[l] {
                pos_l[l] = p;
                grid.update(l, p);
                moved_l.push(l);
            }
            schedule_next(ctx, &mut queue, g, l, now);
        }
        if moved_l.is_empty() {
            continue;
        }
        pairs.clear();
        for &a in &moved_l {
            scratch.clear();
            grid.neighbors_into(pos_l[a], &mut scratch);
            for &b in &scratch {
                if b != a {
                    pairs.push((a.min(b) as u32, a.max(b) as u32));
                }
            }
            for &b in &open_l[a] {
                let b = b as usize;
                pairs.push((a.min(b) as u32, a.max(b) as u32));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        for &(la, lb) in &pairs {
            let (la, lb) = (la as usize, lb as usize);
            let d = pos_l[la].distance(&pos_l[lb]);
            let now_up = d <= ctx.range_m;
            let was_up = open_l[la].binary_search(&(lb as u32)).is_ok();
            if now_up != was_up {
                if now_up {
                    adj_insert(&mut open_l, la, lb);
                } else {
                    adj_remove(&mut open_l, la, lb);
                }
                let ga = hosted[la] as usize;
                if ctx.owner[ga] == shard {
                    out.events.push(ContactEvent {
                        time: now,
                        a: ga,
                        b: hosted[lb] as usize,
                        phase: if now_up {
                            ContactPhase::Up
                        } else {
                            ContactPhase::Down
                        },
                        distance_m: d,
                    });
                }
            }
        }
    }

    // Handoff write-back: final stored positions of owned nodes that
    // moved this epoch.
    for (l, &g) in hosted.iter().enumerate() {
        let g = g as usize;
        if ctx.owner[g] == shard && pos_l[l] != ctx.positions[g] {
            out.moved.push((g as u32, pos_l[l]));
        }
    }
    out
}

/// The smallest tick-aligned time at or after `at` on the grid anchored
/// at `anchor`. Same arithmetic as the single-loop kernel.
fn next_tick_at_or_after(anchor: SimTime, tick: SimDuration, at: SimTime) -> SimTime {
    let tick = tick.as_millis();
    let steps = (at.as_millis() - anchor.as_millis()).div_ceil(tick);
    SimTime::from_millis(anchor.as_millis() + steps * tick)
}

/// Schedules hosted node `local`'s next wake after `now`: the next tick
/// while its trajectory is moving, the first tick after a waiting span,
/// or never once parked at its final waypoint. Mirrors
/// `GridContactEngine::schedule_next` on the struct-of-arrays storage;
/// wakes beyond the epoch end are dropped and re-derived — identically
/// — at the next epoch boundary.
fn schedule_next(
    ctx: &EpochCtx<'_>,
    queue: &mut EventQueue<usize>,
    global: usize,
    local: usize,
    now: SimTime,
) {
    let times = ctx.set.times(global);
    let last = times[times.len() - 1];
    if now >= last {
        return; // parked at the final waypoint forever
    }
    let idx = times.partition_point(|wt| *wt <= now);
    let next = if idx == 0 {
        next_tick_at_or_after(ctx.anchor, ctx.tick, times[0])
    } else {
        let p0 = ctx.set.point(global, idx - 1);
        let p1 = ctx.set.point(global, idx);
        if p0 == p1 {
            next_tick_at_or_after(ctx.anchor, ctx.tick, times[idx])
        } else {
            now + ctx.tick
        }
    };
    if next <= ctx.epoch_end {
        // `next` is strictly after `now` (= at or after the queue
        // clock), so this cannot fail.
        queue
            .schedule(next, local)
            .expect("re-index wakes are scheduled in the future");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GridContactEngine;

    fn crossing() -> Vec<Trajectory> {
        vec![
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(0.0, 0.0)),
                (SimTime::from_secs(1000), Point::new(1000.0, 0.0)),
            ])
            .expect("valid"),
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(1000.0, 0.0)),
                (SimTime::from_secs(1000), Point::new(0.0, 0.0)),
            ])
            .expect("valid"),
            Trajectory::stationary(Point::new(500.0, 10.0)),
        ]
    }

    fn config(shards: usize, epoch_ticks: u64) -> ShardConfig {
        ShardConfig {
            shards,
            epoch_ticks,
            threads: 1,
        }
    }

    #[test]
    fn matches_single_loop_kernel_exactly() {
        let tick = SimDuration::from_secs(10);
        let end = SimTime::from_secs(1000);
        let single = GridContactEngine::new(crossing(), 60.0, tick);
        let expected = ContactSource::contact_events(&single, SimTime::ZERO, end);
        assert!(!expected.is_empty());
        for shards in [1, 2, 4] {
            for epoch_ticks in [1, 7, 1000] {
                let sharded = ShardedContactEngine::from_trajectories(
                    &crossing(),
                    60.0,
                    tick,
                    config(shards, epoch_ticks),
                );
                assert_eq!(
                    ContactSource::contact_events(&sharded, SimTime::ZERO, end),
                    expected,
                    "shards {shards}, epoch_ticks {epoch_ticks}"
                );
            }
        }
    }

    #[test]
    fn epoch_streaming_concatenates_to_the_full_stream() {
        let tick = SimDuration::from_secs(10);
        let end = SimTime::from_secs(1000);
        let engine =
            ShardedContactEngine::from_trajectories(&crossing(), 60.0, tick, config(2, 16));
        let full = ContactSource::contact_events(&engine, SimTime::ZERO, end);
        let mut streamed = Vec::new();
        let mut epochs = 0;
        engine.for_each_epoch(SimTime::ZERO, end, |chunk| {
            streamed.extend_from_slice(chunk);
            epochs += 1;
        });
        assert_eq!(streamed, full);
        assert!(epochs > 1, "window should span multiple epochs");
    }

    #[test]
    fn owner_partition_is_total_and_ordered() {
        let positions: Vec<Point> = (0..100).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        let boundaries = owner_boundaries(&positions, 4);
        assert_eq!(boundaries.len(), 3);
        let owners: Vec<u32> = positions
            .iter()
            .map(|p| owner_of(&boundaries, p.x))
            .collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(owners, sorted, "owners are monotone in x");
        assert!(owners.iter().all(|&s| s < 4));
        assert_eq!(owner_boundaries(&positions, 1), Vec::<f64>::new());
    }

    #[test]
    fn adjacency_helpers_keep_lists_sorted() {
        let mut adj = vec![Vec::new(); 4];
        adj_insert(&mut adj, 2, 0);
        adj_insert(&mut adj, 2, 3);
        adj_insert(&mut adj, 2, 1);
        adj_insert(&mut adj, 2, 1); // duplicate is a no-op
        assert_eq!(adj[2], vec![0, 1, 3]);
        assert_eq!(adj[1], vec![2]);
        adj_remove(&mut adj, 2, 1);
        adj_remove(&mut adj, 2, 1); // absent is a no-op
        assert_eq!(adj[2], vec![0, 3]);
        assert!(adj[1].is_empty());
    }
}
