//! The event-driven contact kernel.
//!
//! [`GridContactEngine`] produces the same contact-transition stream as
//! the naive [`World`](sos_sim::World) scan — same pairs, same up/down
//! tick times, same distances — without touching every pair on every
//! tick. Two mechanisms make it cheap:
//!
//! 1. **Per-node re-index events** on [`sos_sim::EventQueue`]: a node
//!    schedules its own next position update. While it moves it wakes
//!    every discovery tick; while it waits at a waypoint (or after its
//!    trajectory ends) it sleeps until the first tick after the wait —
//!    dormant nodes cost nothing. The paper's population is stationary
//!    5–8 h/day, so this skips most of the simulated week.
//! 2. **A uniform-grid spatial hash** ([`UniformGrid`]) with cell size
//!    equal to the radio range: a moving node compares itself only
//!    against the 3×3 cell block around it (for new contacts) and its
//!    currently-open contacts (for breaks), not against all n nodes.
//!
//! Contact state between two nodes can only change on a tick where at
//! least one of them moved, so checking moved nodes against their
//! neighborhoods is *exhaustive*, not approximate — the equivalence
//! tests in `tests/equivalence.rs` assert byte-for-byte identical
//! event streams against the naive scan.

use crate::grid::UniformGrid;
use sos_sim::mobility::trace::Trajectory;
use sos_sim::world::{ContactEvent, ContactPhase, ContactSource};
use sos_sim::{EventQueue, Point, SimDuration, SimTime};
use std::collections::HashSet;

/// The spatial-grid, event-driven contact source.
#[derive(Clone, Debug)]
pub struct GridContactEngine {
    trajectories: Vec<Trajectory>,
    range_m: f64,
    tick: SimDuration,
}

impl GridContactEngine {
    /// Creates an engine over the given trajectories.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories` is empty, `range_m` is not positive, or
    /// `tick` is zero — the same contract as [`sos_sim::World::new`].
    pub fn new(
        trajectories: Vec<Trajectory>,
        range_m: f64,
        tick: SimDuration,
    ) -> GridContactEngine {
        assert!(!trajectories.is_empty(), "engine needs nodes");
        assert!(range_m > 0.0, "range must be positive");
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        GridContactEngine {
            trajectories,
            range_m,
            tick,
        }
    }

    /// Rebuilds an engine from an existing [`sos_sim::World`],
    /// preserving its range and discovery tick.
    pub fn from_world(world: sos_sim::World) -> GridContactEngine {
        let range_m = world.range_m();
        let tick = world.tick();
        GridContactEngine::new(world.into_trajectories(), range_m, tick)
    }

    /// The discovery tick.
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// All trajectories, in node order.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The smallest tick-aligned time at or after `at`, given the tick
    /// grid anchored at `start`. Waking *at* a span boundary matters:
    /// trajectories may hold equal-timestamp waypoints (teleports), so
    /// the position can already differ at the boundary tick itself.
    fn next_tick_at_or_after(&self, start: SimTime, at: SimTime) -> SimTime {
        let tick = self.tick.as_millis();
        let steps = (at.as_millis() - start.as_millis()).div_ceil(tick);
        SimTime::from_millis(start.as_millis() + steps * tick)
    }

    /// Schedules `node`'s next re-index after its wake-up at `now`:
    /// the next tick while it is moving, the first tick after a waiting
    /// span, or never once its trajectory has ended.
    fn schedule_next(
        &self,
        queue: &mut EventQueue<usize>,
        node: usize,
        start: SimTime,
        now: SimTime,
        end: SimTime,
    ) {
        let wps = self.trajectories[node].waypoints();
        let last = wps[wps.len() - 1].0;
        if now >= last {
            return; // parked at the final waypoint forever
        }
        let idx = wps.partition_point(|(wt, _)| *wt <= now);
        let next = if idx == 0 {
            // Before the first waypoint: parked until it. Both span
            // ends use at-or-after: with duplicate timestamps the
            // position can jump exactly at the boundary, and waking a
            // tick early on a plain waypoint is a harmless no-op.
            self.next_tick_at_or_after(start, wps[0].0)
        } else {
            let (_, p0) = wps[idx - 1];
            let (t1, p1) = wps[idx];
            if p0 == p1 {
                // Waiting span: position is constant until t1.
                self.next_tick_at_or_after(start, t1)
            } else {
                now + self.tick
            }
        };
        if next <= end {
            // `next` is strictly after `now`, the time of the wake being
            // processed (= the queue clock), so this cannot fail.
            queue
                .schedule(next, node)
                .expect("re-index wakes are scheduled in the future");
        }
    }
}

impl ContactSource for GridContactEngine {
    fn node_count(&self) -> usize {
        self.trajectories.len()
    }

    fn range_m(&self) -> f64 {
        self.range_m
    }

    fn position(&self, node: usize, t: SimTime) -> Point {
        self.trajectories[node].position_at(t)
    }

    fn contact_events(&self, start: SimTime, end: SimTime) -> Vec<ContactEvent> {
        let _span = sos_obs::profile::span("engine/contact_events");
        let n = self.trajectories.len();
        let mut events = Vec::new();
        if start > end {
            return events;
        }

        let mut positions: Vec<Point> = (0..n).map(|i| self.position(i, start)).collect();
        let mut grid = UniformGrid::new(n, self.range_m);
        for (i, p) in positions.iter().enumerate() {
            grid.update(i, *p);
        }
        // open[a] = partners with a currently-open contact.
        let mut open: Vec<HashSet<usize>> = vec![HashSet::new(); n];

        // Initial tick: every node is "new", so every in-range pair
        // comes up — identical to the naive scan's first sample.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for (a, p) in positions.iter().enumerate() {
            scratch.clear();
            grid.neighbors_into(*p, &mut scratch);
            for &b in &scratch {
                if b > a {
                    pairs.push((a, b));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        for &(a, b) in &pairs {
            let d = positions[a].distance(&positions[b]);
            if d <= self.range_m {
                open[a].insert(b);
                open[b].insert(a);
                events.push(ContactEvent {
                    time: start,
                    a,
                    b,
                    phase: ContactPhase::Up,
                    distance_m: d,
                });
            }
        }

        // Per-node wake-ups from here on.
        let mut queue: EventQueue<usize> = EventQueue::new();
        for node in 0..n {
            self.schedule_next(&mut queue, node, start, start, end);
        }

        let mut moved: Vec<usize> = Vec::new();
        while let Some(now) = queue.peek_time() {
            debug_assert!(now <= end, "events are never scheduled past the window");
            // Drain the whole tick batch so pair checks see every
            // node's settled position.
            moved.clear();
            while queue.peek_time() == Some(now) {
                let (_, node) = queue.pop().expect("peeked event");
                let p = self.position(node, now);
                if p != positions[node] {
                    positions[node] = p;
                    grid.update(node, p);
                    moved.push(node);
                }
                self.schedule_next(&mut queue, node, start, now, end);
            }
            if moved.is_empty() {
                continue;
            }
            // Candidates: the 3×3 neighborhood of each moved node (new
            // contacts) plus its open contacts (breaks can move a
            // partner out of the neighborhood entirely).
            pairs.clear();
            for &a in &moved {
                scratch.clear();
                grid.neighbors_into(positions[a], &mut scratch);
                for &b in &scratch {
                    if b != a {
                        pairs.push((a.min(b), a.max(b)));
                    }
                }
                for &b in &open[a] {
                    pairs.push((a.min(b), a.max(b)));
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            for &(a, b) in &pairs {
                let d = positions[a].distance(&positions[b]);
                let now_up = d <= self.range_m;
                let was_up = open[a].contains(&b);
                if now_up != was_up {
                    if now_up {
                        open[a].insert(b);
                        open[b].insert(a);
                    } else {
                        open[a].remove(&b);
                        open[b].remove(&a);
                    }
                    events.push(ContactEvent {
                        time: now,
                        a,
                        b,
                        phase: if now_up {
                            ContactPhase::Up
                        } else {
                            ContactPhase::Down
                        },
                        distance_m: d,
                    });
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_sim::world::ContactInterval;
    use sos_sim::World;

    fn crossing() -> Vec<Trajectory> {
        vec![
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(0.0, 0.0)),
                (SimTime::from_secs(1000), Point::new(1000.0, 0.0)),
            ])
            .unwrap(),
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(1000.0, 0.0)),
                (SimTime::from_secs(1000), Point::new(0.0, 0.0)),
            ])
            .unwrap(),
        ]
    }

    #[test]
    fn crossing_pair_matches_naive_scan() {
        let tick = SimDuration::from_secs(10);
        let end = SimTime::from_secs(1000);
        let engine = GridContactEngine::new(crossing(), 60.0, tick);
        let world = World::new(crossing(), 60.0, tick);
        assert_eq!(
            ContactSource::contact_events(&engine, SimTime::ZERO, end),
            World::contact_events(&world, SimTime::ZERO, end)
        );
    }

    #[test]
    fn stationary_pair_contact_spans_whole_window() {
        let engine = GridContactEngine::new(
            vec![
                Trajectory::stationary(Point::new(0.0, 0.0)),
                Trajectory::stationary(Point::new(30.0, 0.0)),
            ],
            60.0,
            SimDuration::from_secs(30),
        );
        let ivs = engine.contact_intervals(SimTime::ZERO, SimTime::from_hours(1));
        assert_eq!(
            ivs,
            vec![ContactInterval {
                a: 0,
                b: 1,
                start: SimTime::ZERO,
                end: SimTime::from_hours(1),
            }]
        );
        // Dormant nodes schedule no wake-ups, so this costs two
        // initial inserts and nothing per tick (observable only as
        // speed, asserted structurally: no events beyond the initial).
        let events = ContactSource::contact_events(&engine, SimTime::ZERO, SimTime::from_hours(1));
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn distant_mover_never_contacts() {
        let engine = GridContactEngine::new(
            vec![
                Trajectory::stationary(Point::new(0.0, 0.0)),
                Trajectory::new(vec![
                    (SimTime::ZERO, Point::new(5000.0, 0.0)),
                    (SimTime::from_secs(100), Point::new(5000.0, 4000.0)),
                ])
                .unwrap(),
            ],
            60.0,
            SimDuration::from_secs(10),
        );
        assert!(
            ContactSource::contact_events(&engine, SimTime::ZERO, SimTime::from_secs(200))
                .is_empty()
        );
    }

    #[test]
    fn from_world_preserves_parameters() {
        let world = World::new(crossing(), 60.0, SimDuration::from_secs(10));
        let events = World::contact_events(&world, SimTime::ZERO, SimTime::from_secs(1000));
        let engine = GridContactEngine::from_world(world);
        assert_eq!(engine.range_m(), 60.0);
        assert_eq!(engine.tick(), SimDuration::from_secs(10));
        assert_eq!(
            ContactSource::contact_events(&engine, SimTime::ZERO, SimTime::from_secs(1000)),
            events
        );
    }

    #[test]
    fn equal_timestamp_waypoints_match_naive_scan() {
        // Trajectory::new permits duplicate timestamps (teleports);
        // the kernel must wake on the boundary tick itself, or the
        // jump lands one tick late relative to the naive scan.
        let teleporter = Trajectory::new(vec![
            (SimTime::ZERO, Point::new(1000.0, 0.0)),
            (SimTime::from_secs(100), Point::new(1000.0, 0.0)),
            (SimTime::from_secs(100), Point::new(10.0, 0.0)), // jump into range
            (SimTime::from_secs(300), Point::new(10.0, 0.0)),
            (SimTime::from_secs(300), Point::new(2000.0, 0.0)), // jump out
        ])
        .unwrap();
        let anchor = Trajectory::stationary(Point::new(0.0, 0.0));
        for tick_secs in [7, 10, 30] {
            let tick = SimDuration::from_secs(tick_secs);
            let end = SimTime::from_secs(400);
            let trajs = vec![anchor.clone(), teleporter.clone()];
            let world = World::new(trajs.clone(), 60.0, tick);
            let engine = GridContactEngine::new(trajs, 60.0, tick);
            let naive = World::contact_events(&world, SimTime::ZERO, end);
            assert_eq!(
                ContactSource::contact_events(&engine, SimTime::ZERO, end),
                naive,
                "tick {tick_secs}s"
            );
            assert!(!naive.is_empty(), "teleport should create a contact");
        }
    }

    #[test]
    fn empty_window_is_empty() {
        let engine = GridContactEngine::new(crossing(), 60.0, SimDuration::from_secs(10));
        assert!(ContactSource::contact_events(
            &engine,
            SimTime::from_secs(10),
            SimTime::from_secs(5)
        )
        .is_empty());
    }
}
