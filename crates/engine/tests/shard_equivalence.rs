//! The sharded kernel's correctness contract: on any trajectory set,
//! any shard count, and any epoch length, [`ShardedContactEngine`]
//! emits a contact stream *byte-identical* to the single-loop
//! [`GridContactEngine`] — same pairs, same tick times, same distances.
//!
//! The cases here deliberately stress the boundary-handoff protocol:
//! nodes oscillating back and forth across shard boundaries (ownership
//! churn every epoch), nodes parked *exactly on* a boundary coordinate
//! (quantile boundaries are sampled from node positions, so exact ties
//! happen), and pairs separated by almost exactly the radio range
//! across a boundary (the halo width).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sos_engine::{GridContactEngine, ShardConfig, ShardedContactEngine};
use sos_sim::geo::{Bounds, Point};
use sos_sim::mobility::random_waypoint::RandomWaypoint;
use sos_sim::mobility::trace::Trajectory;
use sos_sim::{ContactSource, SimDuration, SimTime};

fn assert_sharded_matches(
    trajectories: &[Trajectory],
    range_m: f64,
    tick: SimDuration,
    end: SimTime,
    shards: usize,
    epoch_ticks: u64,
) {
    let single = GridContactEngine::new(trajectories.to_vec(), range_m, tick);
    let sharded = ShardedContactEngine::from_trajectories(
        trajectories,
        range_m,
        tick,
        ShardConfig {
            shards,
            epoch_ticks,
            threads: 0,
        },
    );
    let expected = ContactSource::contact_events(&single, SimTime::ZERO, end);
    let got = ContactSource::contact_events(&sharded, SimTime::ZERO, end);
    assert_eq!(
        expected, got,
        "sharded stream diverged (K={shards}, epoch_ticks={epoch_ticks}, range {range_m} m)"
    );
}

/// Nodes that oscillate horizontally forever: every epoch hands some
/// of them to a different owner.
fn oscillating_population(seed: u64, nodes: usize, end: SimTime) -> Vec<Trajectory> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..nodes)
        .map(|_| {
            let x0 = rng.gen_range(0.0..600.0);
            let amp = rng.gen_range(10.0..300.0);
            let y = rng.gen_range(0.0..120.0);
            let leg = rng.gen_range(45u64..240);
            let mut points = vec![(SimTime::ZERO, Point::new(x0, y))];
            let mut t = 0u64;
            let mut at_far = false;
            while SimTime::from_secs(t) < end {
                t += leg;
                at_far = !at_far;
                let x = if at_far { x0 + amp } else { x0 };
                points.push((SimTime::from_secs(t), Point::new(x, y)));
            }
            Trajectory::new(points).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ownership churn: every node crosses shard boundaries again and
    /// again, with epochs short enough that handoffs happen constantly.
    #[test]
    fn oscillating_boundary_churn(
        seed in 0u64..1_000,
        nodes in 4usize..20,
        shards in 1usize..9,
        epoch_ticks in 1u64..40,
    ) {
        let end = SimTime::from_mins(30);
        let trajectories = oscillating_population(seed, nodes, end);
        assert_sharded_matches(
            &trajectories,
            60.0,
            SimDuration::from_secs(30),
            end,
            shards,
            epoch_ticks,
        );
    }

    /// Exact ties and halo-width edges: nodes parked on the same x as
    /// a mover's turning point (a future quantile boundary), and pairs
    /// whose separation brushes the radio range across that line.
    #[test]
    fn on_boundary_nodes_and_halo_width_pairs(
        seed in 0u64..1_000,
        range in 30.0f64..90.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let boundary_x = rng.gen_range(100.0..300.0);
        let eps = rng.gen_range(0.001..0.5);
        let mut trajectories = vec![
            // Parked exactly on the boundary coordinate, twice (ties).
            Trajectory::stationary(Point::new(boundary_x, 0.0)),
            Trajectory::stationary(Point::new(boundary_x, 40.0)),
            // A halo-width pair: just inside / just outside range of
            // the boundary sitters.
            Trajectory::stationary(Point::new(boundary_x + range - eps, 0.0)),
            Trajectory::stationary(Point::new(boundary_x + range + eps, 40.0)),
            // A mover that turns around exactly on the boundary.
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(boundary_x - 200.0, 20.0)),
                (SimTime::from_secs(400), Point::new(boundary_x, 20.0)),
                (SimTime::from_secs(800), Point::new(boundary_x - 200.0, 20.0)),
                (SimTime::from_secs(1_200), Point::new(boundary_x + 200.0, 20.0)),
            ])
            .unwrap(),
        ];
        // Background crowd so the quantile sampler has mass on both
        // sides of the boundary.
        for _ in 0..8 {
            let x = rng.gen_range(0.0..2.0 * boundary_x);
            let y = rng.gen_range(0.0..80.0);
            trajectories.push(Trajectory::stationary(Point::new(x, y)));
        }
        for k in [2usize, 4] {
            assert_sharded_matches(
                &trajectories,
                range,
                SimDuration::from_secs(15),
                SimTime::from_secs(1_500),
                k,
                5,
            );
        }
    }

    /// Epoch grids that do not divide the window evenly (last epoch is
    /// short) still concatenate to the exact stream.
    #[test]
    fn ragged_final_epoch(epoch_ticks in 1u64..97, end_secs in 100u64..2_000) {
        let trajectories = oscillating_population(42, 8, SimTime::from_secs(2_000));
        assert_sharded_matches(
            &trajectories,
            60.0,
            SimDuration::from_secs(30),
            SimTime::from_secs(end_secs),
            3,
            epoch_ticks,
        );
    }
}

#[test]
fn deterministic_across_shard_counts_and_reruns() {
    // The stream must be one function of (trajectories, range, tick,
    // window) — invariant under K = 1, 4, 16 and across reruns.
    let rwp = RandomWaypoint::pedestrian(Bounds::new(900.0, 500.0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let trajectories: Vec<Trajectory> = (0..60)
        .map(|_| rwp.generate(&mut rng, SimDuration::from_mins(25)))
        .collect();
    let tick = SimDuration::from_secs(30);
    let end = SimTime::from_mins(25);
    let single = GridContactEngine::new(trajectories.clone(), 60.0, tick);
    let expected = ContactSource::contact_events(&single, SimTime::ZERO, end);
    assert!(!expected.is_empty(), "scenario should produce contacts");
    for k in [1usize, 4, 16] {
        let engine = ShardedContactEngine::from_trajectories(
            &trajectories,
            60.0,
            tick,
            ShardConfig {
                shards: k,
                epoch_ticks: 8,
                threads: 0,
            },
        );
        let first = ContactSource::contact_events(&engine, SimTime::ZERO, end);
        let second = ContactSource::contact_events(&engine, SimTime::ZERO, end);
        assert_eq!(expected, first, "K={k} diverged from the single loop");
        assert_eq!(first, second, "K={k} was not deterministic across reruns");
    }
}

#[test]
fn more_shards_than_nodes() {
    // Degenerate partition: K far above the population still owns
    // every node exactly once and emits the exact stream.
    let trajectories = oscillating_population(3, 3, SimTime::from_mins(10));
    assert_sharded_matches(
        &trajectories,
        60.0,
        SimDuration::from_secs(30),
        SimTime::from_mins(10),
        16,
        4,
    );
}
