//! The engine's correctness contract: on any trajectory set, the grid
//! kernel emits the *same contact stream* as the naive all-pairs scan —
//! same pairs, same up/down tick times, same distances — so the two
//! sources are interchangeable under the experiment driver.

use proptest::prelude::*;
use rand::SeedableRng;
use sos_engine::GridContactEngine;
use sos_sim::geo::{Bounds, Point};
use sos_sim::mobility::random_waypoint::RandomWaypoint;
use sos_sim::mobility::schedule::{DailySchedule, ScheduleConfig};
use sos_sim::mobility::trace::Trajectory;
use sos_sim::{ContactSource, SimDuration, SimTime, World};

fn assert_equivalent(trajectories: Vec<Trajectory>, range_m: f64, tick: SimDuration, end: SimTime) {
    let world = World::new(trajectories.clone(), range_m, tick);
    let engine = GridContactEngine::new(trajectories, range_m, tick);
    let naive = World::contact_events(&world, SimTime::ZERO, end);
    let grid = ContactSource::contact_events(&engine, SimTime::ZERO, end);
    assert_eq!(
        naive, grid,
        "grid kernel diverged from naive scan (range {range_m} m, tick {tick:?})"
    );
    // Intervals follow from events, but assert them too: they are what
    // the driver's contact-down scheduling actually consumes.
    assert_eq!(
        World::contact_intervals(&world, SimTime::ZERO, end),
        engine.contact_intervals(SimTime::ZERO, end),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random-waypoint crowds in a small area (dense, many
    /// transitions): identical streams.
    #[test]
    fn random_waypoint_equivalence(seed in 0u64..1_000, nodes in 2usize..24) {
        let rwp = RandomWaypoint::pedestrian(Bounds::new(400.0, 300.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let duration = SimDuration::from_mins(40);
        let trajectories: Vec<Trajectory> =
            (0..nodes).map(|_| rwp.generate(&mut rng, duration)).collect();
        assert_equivalent(
            trajectories,
            60.0,
            SimDuration::from_secs(30),
            SimTime::from_mins(40),
        );
    }

    /// Schedule-based mobility (the field-study model, with long
    /// dormant spans the kernel skips): identical streams.
    #[test]
    fn daily_schedule_equivalence(seed in 0u64..1_000) {
        let config = ScheduleConfig {
            bounds: Bounds::new(2_000.0, 1_500.0),
            campus_center: Point::new(1_000.0, 750.0),
            days: 1,
            ..ScheduleConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let schedule = DailySchedule::new(config, 10, &mut rng);
        let trajectories = schedule.generate_all(seed ^ 0xfeed);
        assert_equivalent(
            trajectories,
            60.0,
            SimDuration::from_secs(30),
            SimTime::from_hours(24),
        );
    }

    /// Odd geometry: range/tick combinations that stress cell-boundary
    /// and tick-alignment behavior, on a fixed crossing scenario.
    #[test]
    fn parameter_grid_equivalence(range in 5.0f64..200.0, tick_secs in 1u64..120) {
        let trajectories = vec![
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(0.0, 0.0)),
                (SimTime::from_secs(500), Point::new(500.0, 10.0)),
                (SimTime::from_secs(900), Point::new(500.0, 10.0)), // wait
                (SimTime::from_secs(1400), Point::new(0.0, 20.0)),
            ]).unwrap(),
            Trajectory::new(vec![
                (SimTime::ZERO, Point::new(500.0, 0.0)),
                (SimTime::from_secs(700), Point::new(0.0, 0.0)),
            ]).unwrap(),
            Trajectory::stationary(Point::new(250.0, 5.0)),
        ];
        assert_equivalent(
            trajectories,
            range,
            SimDuration::from_secs(tick_secs),
            SimTime::from_secs(1500),
        );
    }
}

#[test]
fn larger_population_spot_check() {
    // One deterministic mid-size case (120 nodes, denser than the
    // proptest cases) so a grid bug that only appears with many
    // occupied cells cannot hide behind small random cases.
    let rwp = RandomWaypoint::pedestrian(Bounds::new(1_500.0, 1_000.0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let trajectories: Vec<Trajectory> = (0..120)
        .map(|_| rwp.generate(&mut rng, SimDuration::from_mins(30)))
        .collect();
    assert_equivalent(
        trajectories,
        60.0,
        SimDuration::from_secs(30),
        SimTime::from_mins(30),
    );
}
