//! Disaster-relief scenario (paper §I motivation): "In natural disaster
//! situations, Internet and cellular communication infrastructures can
//! be severely disrupted, prohibiting users from notifying family,
//! friends, and associates about safety, location, food, water, and
//! other resources."
//!
//! Thirty survivors move through a 2 km × 2 km disaster zone with no
//! infrastructure at all. An emergency-coordinator account posts
//! periodic resource bulletins everyone subscribes to; survivors post
//! safety check-ins their family groups subscribe to. We compare
//! epidemic and interest-based routing on identical mobility.
//!
//! Run with `cargo run --release --example disaster_relief`.

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::experiments::driver::{Driver, DriverConfig};
use sos::sim::geo::Bounds;
use sos::sim::mobility::random_waypoint::RandomWaypoint;
use sos::sim::radio::RadioTech;
use sos::sim::{SimDuration, SimTime, World};
use sos::social::{AlleyOopApp, Cloud};

const SURVIVORS: usize = 30;
const FAMILY_SIZE: usize = 5;
const HOURS: u64 = 12;

fn build_apps(scheme: SchemeKind, rng: &mut rand::rngs::StdRng) -> Vec<AlleyOopApp> {
    let mut cloud = Cloud::new("Emergency CA", [9; 32]);
    let mut apps: Vec<AlleyOopApp> = (0..SURVIVORS)
        .map(|i| {
            let handle = if i == 0 {
                "coord".to_string()
            } else {
                format!("person-{i:02}")
            };
            AlleyOopApp::sign_up(
                &mut cloud,
                PeerId(i as u32),
                &handle,
                scheme,
                SimTime::ZERO,
                rng,
            )
            .expect("unique handles")
        })
        .collect();
    // Everyone follows the coordinator's bulletins; families follow each
    // other's check-ins.
    let coord = apps[0].user_id();
    for i in 1..SURVIVORS {
        let uid = apps[i].user_id();
        apps[i].follow(coord);
        let family = (i - 1) / FAMILY_SIZE;
        for j in 1..SURVIVORS {
            if j != i && (j - 1) / FAMILY_SIZE == family {
                let friend = apps[j].user_id();
                apps[i].follow(friend);
                let _ = uid;
            }
        }
    }
    apps
}

fn run(scheme: SchemeKind) -> (usize, u64, f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let apps = build_apps(scheme, &mut rng);

    // Survivors wander the disaster zone on foot.
    let bounds = Bounds::new(2_000.0, 2_000.0);
    let rwp = RandomWaypoint::pedestrian(bounds);
    let trajectories: Vec<_> = (0..SURVIVORS)
        .map(|i| {
            let mut trng = rand::rngs::StdRng::seed_from_u64(5000 + i as u64);
            rwp.generate(&mut trng, SimDuration::from_hours(HOURS))
        })
        .collect();
    // No infrastructure WiFi: peer-to-peer radios only.
    let world = World::new(
        trajectories,
        RadioTech::max_range_m(false),
        SimDuration::from_secs(15),
    );

    // Interest map for delivery accounting.
    let mut followers: Vec<Vec<usize>> = vec![Vec::new(); SURVIVORS];
    for i in 1..SURVIVORS {
        followers[0].push(i); // coordinator bulletins
        let family = (i - 1) / FAMILY_SIZE;
        for (j, follows) in followers.iter_mut().enumerate().skip(1) {
            if j != i && (j - 1) / FAMILY_SIZE == family {
                follows.push(i);
            }
        }
    }

    let end = SimTime::from_hours(HOURS);
    let mut driver = Driver::new(
        apps,
        world,
        followers,
        DriverConfig {
            ad_interval: SimDuration::from_secs(30),
            infra_available: false,
            seed: 99,
        },
        end,
    );
    // Coordinator bulletin every 2 h; each survivor checks in twice.
    let mut post_rng = rand::rngs::StdRng::seed_from_u64(77);
    for h in (1..HOURS).step_by(2) {
        driver.schedule_post(SimTime::from_hours(h), 0);
    }
    for i in 1..SURVIVORS {
        for _ in 0..2 {
            use rand::Rng;
            let at = SimTime::from_millis(post_rng.gen_range(0..end.as_millis()));
            driver.schedule_post(at, i);
        }
    }

    let (metrics, apps) = driver.run();
    let transfers: u64 = apps
        .iter()
        .map(|a| a.middleware().stats().bundles_received)
        .sum();
    let cdf = metrics.delays.cdf_all_hours();
    let median = if cdf.is_empty() {
        f64::NAN
    } else {
        cdf.quantile(0.5)
    };
    (
        metrics.delays.len(),
        transfers,
        metrics.delivery.overall_ratio(),
        median,
    )
}

fn main() {
    println!("disaster relief: {SURVIVORS} survivors, 2x2 km zone, {HOURS} h, no infrastructure");
    println!();
    println!("scheme            deliveries transfers delivery-ratio median-delay");
    for scheme in [
        SchemeKind::Epidemic,
        SchemeKind::InterestBased,
        SchemeKind::Direct,
    ] {
        let (deliveries, transfers, ratio, median_h) = run(scheme);
        println!(
            "{:<17} {:>10} {:>9} {:>14.3} {:>11.2}h",
            scheme.name(),
            deliveries,
            transfers,
            ratio,
            median_h
        );
    }
    println!();
    println!("expected shape: epidemic maximises delivery at the cost of transfers;");
    println!("interest-based approaches it with far less replication; direct trails.");
}
