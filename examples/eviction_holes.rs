//! Delivery under store eviction: demonstrates the permanent-hole bug
//! the v1 watermark sync protocol had, and its fix by gap-aware ranged
//! requests (sync protocol v2).
//!
//! A capacity-constrained relay shuttles batches of an author's posts to
//! a subscriber; the relay's cap evicts the oldest posts between trips,
//! so the subscriber's store develops holes while its latest watermark
//! looks current. The final direct encounter with the author re-fetches
//! exactly the missing middles.
//!
//! ```sh
//! cargo run --release --example eviction_holes
//! ```

use sos::experiments::eviction::{run_eviction_study, EvictionStudyConfig};

fn main() {
    let config = EvictionStudyConfig::default();
    println!(
        "eviction scenario: {} rounds x {} posts, relay cap {}\n",
        config.rounds, config.posts_per_round, config.relay_capacity
    );
    let outcome = run_eviction_study(&config);
    println!("{}", outcome.format_report());
    assert_eq!(
        outcome.delivered_final, outcome.posts,
        "gap-aware sync must recover every evicted hole"
    );
    println!("ok: every hole healed at the first direct author encounter");
}
