//! Bundle forensics: why messages die, scheme by scheme.
//!
//! Imports the Haggle/CRAWDAD mini fixture, runs **all five** routing
//! schemes over the real-deployment contact timeline with the
//! observability layer attached, reconstructs every bundle's
//! propagation DAG from the merged journal, and classifies every
//! undelivered bundle to exactly one root cause — then prints the
//! side-by-side "why messages died" table and a full PATH-REPORT.
//!
//! Demonstrates the PR 9 provenance invariants end-to-end:
//!
//! * forensics is exhaustive — delivered + root-caused undelivered
//!   equals authored, for every scheme;
//! * the report is deterministic — a second observed run renders
//!   byte-identical bytes;
//! * observation stays passive — outcomes match the unobserved run.
//!
//! ```sh
//! cargo run --release --example bundle_forensics
//! ```

use sos::core::routing::SchemeKind;
use sos::experiments::corpus::{
    followers_from_trace, run_corpus_study, run_corpus_study_full, CorpusStudyConfig,
};
use sos::experiments::observe::RunObserver;
use sos::experiments::report::{follower_destinations, path_report, scheme_traits};
use sos::obs::{DropCause, Forensics};
use sos::trace::corpora::{import_bytes, CorpusFormat};
use std::path::PathBuf;

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/trace/tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn main() {
    let corpus =
        import_bytes(CorpusFormat::Crawdad, &fixture("haggle_mini.conn")).expect("fixture imports");
    let trace = &corpus.trace;
    let followers = followers_from_trace(trace);
    let destinations = follower_destinations(&followers);
    println!(
        "bundle forensics: haggle_mini.conn — {} nodes, {} contact intervals\n",
        trace.node_count(),
        trace.intervals(trace.end_time()).len()
    );

    let config = CorpusStudyConfig {
        total_posts: 20,
        ..CorpusStudyConfig::default()
    };

    // One observed run per scheme; keep forensics + a rendered report.
    let mut columns: Vec<(SchemeKind, Forensics)> = Vec::new();
    let mut reports: Vec<(SchemeKind, String)> = Vec::new();
    for scheme in SchemeKind::ALL {
        let cfg = CorpusStudyConfig {
            scheme,
            ..config.clone()
        };
        let observer = RunObserver::new();
        let run = run_corpus_study_full(trace, &cfg, Some(&observer));
        let observation = observer.finish();

        // Passive: the observed outcome matches a blind run.
        let blind = run_corpus_study(trace, &cfg);
        assert_eq!(
            blind.interested_deliveries, run.outcome.interested_deliveries,
            "{scheme:?}: observation changed the run"
        );

        let forensics = observation
            .provenance()
            .classify(&destinations, scheme_traits(scheme));
        // Exhaustive: every authored bundle is delivered or root-caused.
        assert!(
            forensics.accounts_for_everything(),
            "{scheme:?}: forensics lost bundles"
        );
        assert_eq!(
            forensics.authored() as u64,
            run.outcome.posts,
            "{scheme:?}: authored != posts"
        );

        reports.push((
            scheme,
            path_report("haggle_mini", &observation, &followers, scheme, 3),
        ));
        columns.push((scheme, forensics));
    }

    // Side-by-side: why messages died, per scheme.
    print!("{:<22}", "verdict");
    for (scheme, _) in &columns {
        print!("{:>19}", format!("{scheme:?}"));
    }
    println!();
    print!("{:<22}", "delivered");
    for (_, f) in &columns {
        print!("{:>19}", f.delivered());
    }
    println!();
    for cause in DropCause::ALL {
        let counts: Vec<u64> = columns
            .iter()
            .map(|(_, f)| {
                f.cause_counts()
                    .iter()
                    .find(|(c, _)| *c == cause)
                    .map_or(0, |(_, n)| *n)
            })
            .collect();
        if counts.iter().all(|&n| n == 0) {
            continue; // keep the table to causes that actually occurred
        }
        print!("{:<22}", cause.label());
        for n in counts {
            print!("{n:>19}");
        }
        println!();
    }

    // The full PATH-REPORT for the paper's scheme of record.
    let (_, ib_report) = reports
        .iter()
        .find(|(s, _)| *s == SchemeKind::InterestBased)
        .expect("IB ran");
    println!("\n{ib_report}");

    // Deterministic: a second observed run renders identical bytes.
    let observer = RunObserver::new();
    let cfg = CorpusStudyConfig {
        scheme: SchemeKind::InterestBased,
        ..config.clone()
    };
    run_corpus_study_full(trace, &cfg, Some(&observer));
    let again = path_report(
        "haggle_mini",
        &observer.finish(),
        &followers,
        SchemeKind::InterestBased,
        3,
    );
    assert_eq!(&again, ib_report, "PATH-REPORT must be deterministic");

    println!("ok: exhaustive, deterministic delivery forensics across all five schemes");
}
