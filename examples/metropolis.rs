//! The metropolis scaling scenario: a districts-and-transit city
//! streamed through the sharded contact kernel, with all five built-in
//! routing schemes evaluated in one pass over the contact stream.
//!
//! By default this runs two small populations so CI can smoke it. The
//! paper-scale sweep is one environment variable away:
//!
//! ```sh
//! cargo run --release --example metropolis
//! SOS_METRO_NODES=10000,100000,1000000 SOS_METRO_DAYS=2 \
//!     cargo run --release --example metropolis
//! ```
//!
//! `SOS_METRO_NODES` is a comma-separated population list;
//! `SOS_METRO_DAYS` the simulated window in days. Each population gets
//! its own city (district grid and post corpus scale with the
//! population) but shares the seed, window, and kernel parameters, so
//! rows are comparable.

use sos::experiments::metropolis::{format_table, metropolis_sweep, MetroConfig};
use std::time::Instant;

fn env_usize_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

// Wall-clock is the point here: this example reports real elapsed
// time of each population's run, not simulated behavior.
#[allow(clippy::disallowed_methods)]
fn main() {
    let populations = env_usize_list("SOS_METRO_NODES", &[1_200, 2_400]);
    let days: u64 = std::env::var("SOS_METRO_DAYS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1);
    let mut base = MetroConfig::for_nodes(populations[0]);
    base.days = days;
    println!(
        "metropolis sweep: populations {populations:?}, {days} day(s), \
         sharded contact kernel (K = cores)\n"
    );
    let start = Instant::now();
    let outcomes = metropolis_sweep(&base, &populations);
    println!("{}", format_table(&outcomes));
    println!("sweep wall time: {:.2?}", start.elapsed());
}
