//! Writing your own routing scheme — the researcher API.
//!
//! The paper's core architectural claim (§III-B): "Routing in SOS is
//! designed for modularity, permitting additional DTN routing schemes to
//! be developed on top of the message manager [...] Both the IB and
//! Epidemic routing protocols are written in less than 100 lines of
//! Swift code."
//!
//! This example writes a complete new scheme in ~40 lines of Rust —
//! "freshness-gated epidemic": pull everything like epidemic, but stop
//! carrying content older than a configurable age (a practical buffer
//! policy for news-like workloads). It is installed with
//! `Sos::set_custom_scheme` without touching any fixed layer, then
//! compared against stock epidemic in a disaster-zone run.
//!
//! Run with `cargo run --release --example custom_scheme`.

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::core::routing::RoutingContext;
use sos::core::Bundle;
use sos::experiments::driver::{Driver, DriverConfig};
use sos::net::Advertisement;
use sos::sim::geo::Bounds;
use sos::sim::mobility::random_waypoint::RandomWaypoint;
use sos::sim::radio::RadioTech;
use sos::sim::{SimDuration, SimTime, World};
use sos::social::{AlleyOopApp, Cloud};
use sos_crypto::UserId;

/// Epidemic replication that refuses to carry stale content.
///
/// The entire scheme: three trait methods. Nothing below the routing
/// manager is touched — exactly the extension surface the paper
/// describes for academic researchers.
struct FreshnessGatedEpidemic {
    max_age: SimDuration,
}

impl RoutingScheme for FreshnessGatedEpidemic {
    fn name(&self) -> &'static str {
        "freshness-gated-epidemic"
    }

    fn interests(&mut self, ctx: &RoutingContext<'_>, ad: &Advertisement) -> Vec<UserId> {
        // Pull from anyone with news, like epidemic.
        ad.users_with_news(ctx.summary)
            .into_iter()
            .filter(|u| u != ctx.me)
            .collect()
    }

    fn should_carry(&mut self, ctx: &RoutingContext<'_>, bundle: &Bundle) -> bool {
        // ...but only keep forwarding content while it is fresh.
        ctx.now.since(bundle.message.created_at) <= self.max_age
    }

    fn should_advertise(&self, ctx: &RoutingContext<'_>, bundle: &Bundle) -> bool {
        &bundle.message.id.author == ctx.me
            || ctx.now.since(bundle.message.created_at) <= self.max_age
    }
}

const NODES: usize = 20;
const HOURS: u64 = 8;

fn run(use_custom: bool) -> (usize, u64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut cloud = Cloud::new("CA", [1; 32]);
    let mut apps: Vec<AlleyOopApp> = (0..NODES)
        .map(|i| {
            AlleyOopApp::sign_up(
                &mut cloud,
                PeerId(i as u32),
                &format!("n{i:02}"),
                SchemeKind::Epidemic,
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap()
        })
        .collect();
    if use_custom {
        for app in &mut apps {
            app.middleware_mut()
                .set_custom_scheme(Box::new(FreshnessGatedEpidemic {
                    max_age: SimDuration::from_mins(30),
                }));
            assert_eq!(
                app.middleware().scheme_kind(),
                SchemeKind::Custom("freshness-gated-epidemic")
            );
        }
    }
    // Half the nodes follow node 0's alerts; the rest are pure mules
    // (epidemic carries through them regardless of interest).
    let broadcaster = apps[0].user_id();
    let mut followers = vec![Vec::new(); NODES];
    for (i, app) in apps.iter_mut().enumerate().skip(1) {
        if i % 2 == 1 {
            app.follow(broadcaster);
            followers[0].push(i);
        }
    }

    let bounds = Bounds::new(1_500.0, 1_500.0);
    let rwp = RandomWaypoint::pedestrian(bounds);
    let trajectories: Vec<_> = (0..NODES)
        .map(|i| {
            let mut trng = rand::rngs::StdRng::seed_from_u64(900 + i as u64);
            rwp.generate(&mut trng, SimDuration::from_hours(HOURS))
        })
        .collect();
    let world = World::new(
        trajectories,
        RadioTech::max_range_m(false),
        SimDuration::from_secs(20),
    );
    let mut driver = Driver::new(
        apps,
        world,
        followers,
        DriverConfig {
            ad_interval: SimDuration::from_secs(30),
            infra_available: false,
            seed: 2,
        },
        SimTime::from_hours(HOURS),
    );
    for h in 0..HOURS {
        driver.schedule_post(SimTime::from_hours(h) + SimDuration::from_mins(5), 0);
    }
    let (metrics, apps) = driver.run();
    let transfers = apps
        .iter()
        .map(|a| a.middleware().stats().bundles_received)
        .sum();
    (
        metrics.delays.len(),
        transfers,
        metrics.delivery.overall_ratio(),
    )
}

fn main() {
    println!("custom routing scheme demo: freshness-gated epidemic vs stock epidemic");
    println!("({NODES} pedestrians, 1.5x1.5 km, {HOURS} h, hourly broadcast from node 0)");
    println!();
    println!("scheme                      deliveries transfers ratio");
    let (d, t, r) = run(false);
    println!("epidemic                    {d:>10} {t:>9} {r:>5.3}");
    let (d, t, r) = run(true);
    println!("freshness-gated (custom)    {d:>10} {t:>9} {r:>5.3}");
    println!();
    println!("the custom scheme trades a little delivery for a bounded carry buffer —");
    println!("and took ~40 lines, without touching the fixed middleware layers.");
}
