//! The headline experiment: the 7-day, 10-user Gainesville field study
//! of paper §VI, reproduced end to end on the simulated substrate.
//!
//! Prints every figure (4a–4d) plus the §VI text metrics with
//! paper-vs-measured columns.
//!
//! Run with `cargo run --release --example field_study`
//! (optionally pass a seed: `-- 7`).

use sos::experiments::report;
use sos::experiments::scenario::{run_field_study, FieldStudyConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| FieldStudyConfig::default().seed);
    let config = FieldStudyConfig {
        seed,
        ..FieldStudyConfig::default()
    };
    eprintln!(
        "simulating {} days, {} users, {} posts, scheme {} (seed {seed}) ...",
        config.days,
        sos::experiments::social::NODES,
        config.total_posts,
        config.scheme
    );
    let outcome = run_field_study(&config);
    println!("{}", report::full_report(&outcome));

    // A few sanity properties the reproduction must satisfy.
    assert_eq!(outcome.social.subscriptions, 46);
    assert!(outcome.metrics.posts == config.total_posts as u64);
    assert!(
        outcome.one_hop_fraction() > 0.5,
        "the paper's majority-one-hop finding must hold"
    );
    eprintln!("done: {} transfers recorded", outcome.transfers());
}
