//! Flight recorder: the eviction scenario with the observability layer
//! attached — every session, transfer, and store eviction lands in a
//! bounded sim-time-stamped journal that dumps as JSONL, while the
//! nodes' counters land in a metrics registry and the hot paths feed
//! the span profiler.
//!
//! Demonstrates the `sos-obs` invariants end-to-end:
//!
//! * observation is passive — an observed run matches an unobserved one;
//! * the journal is deterministic — two observed runs dump identical
//!   JSONL;
//! * the relay's capacity cap shows up as `store_evict` events whose
//!   total matches the holes the gap-aware sync later heals.
//!
//! ```sh
//! cargo run --release --example flight_recorder
//! ```

use sos::experiments::eviction::{run_eviction_study_observed, EvictionStudyConfig};
use sos::experiments::observe::RunObserver;

fn main() {
    let config = EvictionStudyConfig::default();
    println!(
        "flight recorder: eviction scenario, {} rounds x {} posts, relay cap {}\n",
        config.rounds, config.posts_per_round, config.relay_capacity
    );

    let observer = RunObserver::with_profiling();
    let outcome = run_eviction_study_observed(&config, &observer);
    let observation = observer.finish();
    print!("{}", outcome.format_report());

    // The relay's cap must have evicted, and the journal saw it happen.
    let journal = &observation.journal;
    assert!(!journal.is_empty(), "observed run must journal events");
    assert!(
        journal.evicted_total() > 0,
        "capped relay must evict bundles"
    );
    println!(
        "\njournal: {} entries retained, {} dropped",
        journal.len(),
        journal.dropped()
    );
    for (kind, n) in journal.counts_by_kind() {
        println!("  {kind:<18} {n}");
    }

    // Registry counters mirror the middleware stats exactly.
    assert_eq!(
        observation.metrics.counters["node0/sos/posts"], outcome.posts,
        "registry must mirror the author's post counter"
    );

    // JSONL dump: head to stdout, full journal to target/.
    let jsonl = journal.to_jsonl();
    println!("\nJSONL head:");
    for line in jsonl.lines().take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", jsonl.lines().count());
    std::fs::create_dir_all("target").expect("create target dir");
    let path = std::path::Path::new("target").join("flight_recorder.jsonl");
    std::fs::write(&path, &jsonl).expect("write journal dump");
    println!("full journal written to {}", path.display());

    // Determinism: a second observed run dumps byte-identical JSONL.
    let observer2 = RunObserver::new();
    let outcome2 = run_eviction_study_observed(&config, &observer2);
    assert_eq!(outcome2.delivered_final, outcome.delivered_final);
    assert_eq!(
        observer2.finish().journal.to_jsonl(),
        jsonl,
        "journal must be deterministic across runs"
    );

    if !observation.profile.is_empty() {
        println!("\nself-profile:\n{}", observation.profile.table());
    }
    println!("\nok: passive, deterministic flight recording of the eviction run");
}
