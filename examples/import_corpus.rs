//! Import real-trace corpora → sanitize → characterize → evaluate.
//!
//! The *in vivo* loop over published datasets: for each committed
//! miniature fixture (CRAWDAD haggle/infocom-style `CONN` log — plain
//! and gzip-framed — Reality-Mining-style Bluetooth scans, SASSY-style
//! ranging intervals) this example
//!
//! 1. imports and sanitizes the noisy log, printing the
//!    [`ImportReport`] that accounts for every repaired/dropped line;
//! 2. asserts the import's inter-contact CCDF matches the committed
//!    expected fingerprint curve (the standard identity check for
//!    encounter datasets);
//! 3. round-trips the trace — including the node-id remapping — through
//!    both codecs;
//! 4. runs **all five** routing schemes on the imported timeline via
//!    the replay driver and prints the comparison table.
//!
//! ```sh
//! cargo run --release --example import_corpus
//! # regenerate the committed fingerprint curves after editing fixtures:
//! SOS_WRITE_FINGERPRINTS=1 cargo run --release --example import_corpus
//! ```
//!
//! [`ImportReport`]: sos::trace::corpora::ImportReport

use sos::experiments::corpus::{run_corpus_study_all_schemes, CorpusStudyConfig};
use sos::experiments::report::corpus_scheme_table;
use sos::trace::corpora::{check_ccdf_fingerprint, import_bytes, CorpusFormat, ImportedCorpus};
use sos::trace::{codec_binary, codec_text, TraceAnalytics};
use std::path::PathBuf;

/// Where the committed fingerprints are evaluated, hours.
const CCDF_XS_HOURS: [f64; 8] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0];
/// Absolute tolerance on each CCDF point.
const CCDF_TOLERANCE: f64 = 0.02;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/trace/tests/fixtures")
        .join(name)
}

fn check_or_write_fingerprint(stem: &str, analytics: &TraceAnalytics) {
    let path = fixture_path(&format!("{stem}.ccdf"));
    let measured = analytics.intercontact_ccdf(&CCDF_XS_HOURS);
    if std::env::var_os("SOS_WRITE_FINGERPRINTS").is_some() {
        let mut out = String::from("# inter-contact CCDF fingerprint: <x_hours> <P(gap > x)>\n");
        for (x, p) in &measured {
            out.push_str(&format!("{x} {p:.6}\n"));
        }
        std::fs::write(&path, out).expect("write fingerprint");
        println!("  wrote fingerprint {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fingerprint {}: {e}", path.display()));
    let checked = check_ccdf_fingerprint(analytics, &expected, CCDF_TOLERANCE)
        .unwrap_or_else(|e| panic!("{stem}: {e}"));
    assert!(
        checked >= CCDF_XS_HOURS.len(),
        "{stem}: fingerprint too short"
    );
    println!("  fingerprint ok: {checked} CCDF points within {CCDF_TOLERANCE}");
}

fn codec_round_trip(corpus: &ImportedCorpus) {
    let via_text = codec_text::from_text(&codec_text::to_text(&corpus.trace)).expect("text codec");
    let via_bin =
        codec_binary::from_binary(&codec_binary::to_binary(&corpus.trace)).expect("binary codec");
    assert_eq!(via_text, corpus.trace, "text round trip must be exact");
    assert_eq!(via_bin, corpus.trace, "binary round trip must be exact");
    assert_eq!(
        via_bin.node_labels().expect("labels survive"),
        corpus.id_map.labels(),
        "node-id remapping must survive the codecs"
    );
}

fn main() {
    let fixtures: [(&str, &str, CorpusFormat); 3] = [
        ("haggle_mini", "haggle_mini.conn", CorpusFormat::Crawdad),
        (
            "reality_mini",
            "reality_mini.txt",
            CorpusFormat::RealityMining,
        ),
        ("sassy_mini", "sassy_mini.csv", CorpusFormat::Sassy),
    ];

    for (stem, file, format) in fixtures {
        println!("=== {file} ===");
        let bytes = std::fs::read(fixture_path(file)).expect("read fixture");
        let corpus = import_bytes(format, &bytes).expect("import fixture");
        print!("{}", corpus.report.summary());
        assert!(
            corpus.report.accounts_for_everything(),
            "{file}: report does not account for every line: {:?}",
            corpus.report
        );

        let analytics = TraceAnalytics::compute(&corpus.trace);
        println!("{}", analytics.report());
        check_or_write_fingerprint(stem, &analytics);
        codec_round_trip(&corpus);

        // All five schemes on the real-deployment timeline.
        let outcomes = run_corpus_study_all_schemes(
            &corpus.trace,
            &CorpusStudyConfig {
                total_posts: 30,
                ..CorpusStudyConfig::default()
            },
        );
        print!("{}", corpus_scheme_table(&outcomes));
        for o in &outcomes {
            assert_eq!(o.posts, 30, "{:?} must complete the workload", o.scheme);
            assert_eq!(o.security_alerts, 0, "{:?} raised alerts", o.scheme);
        }
        assert!(
            outcomes.iter().any(|o| o.interested_deliveries > 0),
            "{file}: no scheme delivered anything"
        );
        println!();
    }

    // The gzip-framed copy must import identically to the plain file.
    println!("=== haggle_mini.conn.gz (gzip framing) ===");
    let plain = import_bytes(
        CorpusFormat::Crawdad,
        &std::fs::read(fixture_path("haggle_mini.conn")).expect("read fixture"),
    )
    .expect("plain import");
    let zipped = import_bytes(
        CorpusFormat::Crawdad,
        &std::fs::read(fixture_path("haggle_mini.conn.gz")).expect("read gz fixture"),
    )
    .expect("gz import");
    assert_eq!(
        plain.trace, zipped.trace,
        "gzip framing must be transparent"
    );
    assert_eq!(plain.report.sanitize, zipped.report.sanitize);
    println!("  gz import identical to plain import");

    println!("\nok: corpora import -> sanitize -> fingerprint -> all-scheme replay");
}
