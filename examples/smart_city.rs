//! Smart-city scenario (paper §I motivation): "opportunistic
//! communication can also serve as a low-cost solution for smart cities,
//! allowing developing and metropolitan areas to route smart city data
//! through mobile and stationary nodes such as pedestrians, vehicles,
//! street lights, public transportation."
//!
//! Eight stationary street-light sensors post readings; two buses loop
//! through the city and pedestrians wander; a stationary data-collector
//! office subscribes to every sensor. Sensor data physically *rides the
//! bus* to the collector — classic data-mule DTN.
//!
//! Run with `cargo run --release --example smart_city`.

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::experiments::driver::{Driver, DriverConfig};
use sos::sim::geo::{Bounds, Point};
use sos::sim::mobility::random_waypoint::RandomWaypoint;
use sos::sim::mobility::trace::{Trajectory, TrajectoryBuilder};
use sos::sim::radio::RadioTech;
use sos::sim::{SimDuration, SimTime, World};
use sos::social::{AlleyOopApp, Cloud};

const SENSORS: usize = 8;
const BUSES: usize = 2;
const PEDESTRIANS: usize = 4;
const HOURS: u64 = 24;

/// Node layout: 0 = collector, 1..=8 sensors, 9..10 buses, 11.. pedestrians.
fn total_nodes() -> usize {
    1 + SENSORS + BUSES + PEDESTRIANS
}

fn sensor_position(i: usize) -> Point {
    // Street lights along a 4 km main road grid.
    let x = 500.0 + (i % 4) as f64 * 1_000.0;
    let y = 1_000.0 + (i / 4) as f64 * 2_000.0;
    Point::new(x, y)
}

fn bus_route(offset_ms: u64, hours: u64) -> Trajectory {
    // A loop passing every sensor and the collector depot.
    let depot = Point::new(100.0, 100.0);
    let mut b = TrajectoryBuilder::new(SimTime::ZERO, depot);
    b.wait_until(SimTime::from_millis(offset_ms));
    let end = SimTime::from_hours(hours);
    while b.now() < end {
        for stop in (0..SENSORS).map(sensor_position).chain([depot]) {
            b.travel_to(stop, 8.0).expect("positive bus speed"); // ~30 km/h
            let dwell = b.now() + SimDuration::from_secs(90); // bus stop
            b.wait_until(dwell);
        }
    }
    b.build()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let n = total_nodes();

    // Signup: city infrastructure enrolls devices once at install time.
    let mut cloud = Cloud::new("SmartCity CA", [3; 32]);
    let mut apps: Vec<AlleyOopApp> = (0..n)
        .map(|i| {
            let handle = match i {
                0 => "collector".to_string(),
                i if i <= SENSORS => format!("sensor-{i:02}"),
                i if i <= SENSORS + BUSES => format!("bus-{}", i - SENSORS),
                i => format!("walker-{}", i - SENSORS - BUSES),
            };
            // Epidemic: city data is public and replication is cheap
            // relative to the value of delivery.
            AlleyOopApp::sign_up(
                &mut cloud,
                PeerId(i as u32),
                &handle,
                SchemeKind::Epidemic,
                SimTime::ZERO,
                &mut rng,
            )
            .expect("unique handles")
        })
        .collect();

    // The collector subscribes to every sensor; buses and pedestrians
    // are pure mules (epidemic carries without subscription).
    let mut followers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 1..=SENSORS {
        let uid = apps[s].user_id();
        apps[0].follow(uid);
        followers[s].push(0);
    }

    // Mobility: sensors and the collector are bolted down; buses loop;
    // pedestrians wander the 4 km x 4 km downtown.
    let bounds = Bounds::new(4_000.0, 4_000.0);
    let mut trajectories = vec![Trajectory::stationary(Point::new(100.0, 100.0))];
    for s in 0..SENSORS {
        trajectories.push(Trajectory::stationary(sensor_position(s)));
    }
    for b in 0..BUSES {
        trajectories.push(bus_route(b as u64 * 1_800_000, HOURS)); // 30 min apart
    }
    let rwp = RandomWaypoint::pedestrian(bounds);
    for p in 0..PEDESTRIANS {
        let mut prng = rand::rngs::StdRng::seed_from_u64(400 + p as u64);
        trajectories.push(rwp.generate(&mut prng, SimDuration::from_hours(HOURS)));
    }
    let world = World::new(
        trajectories,
        RadioTech::max_range_m(false),
        SimDuration::from_secs(10),
    );

    let end = SimTime::from_hours(HOURS);
    let mut driver = Driver::new(
        apps,
        world,
        followers,
        DriverConfig {
            ad_interval: SimDuration::from_secs(30),
            infra_available: false,
            seed: 55,
        },
        end,
    );
    // Each sensor posts a reading every 2 hours.
    for s in 1..=SENSORS {
        for h in (0..HOURS).step_by(2) {
            driver.schedule_post(SimTime::from_hours(h) + SimDuration::from_mins(s as u64), s);
        }
    }

    let (metrics, apps) = driver.run();
    let cdf = metrics.delays.cdf_all_hours();
    println!("smart city: {SENSORS} sensors, {BUSES} buses, {PEDESTRIANS} pedestrians, {HOURS} h");
    println!("sensor readings posted:        {}", metrics.posts);
    println!(
        "readings delivered to collector: {} ({:.1}%)",
        metrics.delays.len(),
        100.0 * metrics.delivery.overall_ratio()
    );
    if !cdf.is_empty() {
        println!(
            "delivery latency: median {:.2} h, p90 {:.2} h, max {:.2} h",
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            cdf.max().unwrap_or(f64::NAN)
        );
    }
    let mule_bundles: u64 = apps
        .iter()
        .skip(1 + SENSORS)
        .map(|a| a.middleware().stats().bundles_received)
        .sum();
    println!("bundles carried by mules (buses+walkers): {mule_bundles}");
    println!();
    println!("the buses are the backbone: sensor data hops on at a stop and");
    println!("rides to the depot where the collector pulls it off.");
}
