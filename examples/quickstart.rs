//! Quickstart: two devices, one secure opportunistic post.
//!
//! Walks the whole paper pipeline in miniature:
//! 1. the one-time infrastructure requirement (cloud + CA signup),
//! 2. offline peer discovery via plain-text advertisements,
//! 3. the certificate-exchange handshake and encrypted session,
//! 4. interest-based dissemination of a signed post.
//!
//! Run with `cargo run --example quickstart`.

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::net::Frame;
use sos::social::{AlleyOopApp, Cloud};
use std::collections::VecDeque;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- One-time infrastructure requirement (paper Fig. 2a) ---------
    // Both users sign up while they still have Internet: keys are
    // generated on-device, the CA issues certificates, and each device
    // stores the CA root. After this, no infrastructure is needed.
    let mut cloud = Cloud::new("AlleyOop Root CA", [42; 32]);
    let mut alice = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(0),
        "alice",
        SchemeKind::InterestBased,
        SimTime::ZERO,
        &mut rng,
    )
    .expect("fresh handle");
    let mut bob = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(1),
        "bob",
        SchemeKind::InterestBased,
        SimTime::ZERO,
        &mut rng,
    )
    .expect("fresh handle");

    // Bob follows Alice (the subscription drives interest-based routing).
    bob.follow(alice.user_id());
    println!("bob follows {}", alice.user_id());

    // --- Offline from here on -----------------------------------------
    let t = SimTime::from_secs(3600);
    let id = alice.post("greetings from the intermittent network!", t);
    println!("alice posted message #{}", id.number);

    // Alice's device roams, broadcasting a plain-text advertisement:
    // "I carry alice's messages up to #1".
    let ad = alice.middleware().advertisement(t);
    println!(
        "alice advertises: {:?}",
        ad.summary
            .iter()
            .map(|(u, n)| format!("{u}→{n}"))
            .collect::<Vec<_>>()
    );

    // Bob's device sees the advertisement, decides it is interesting
    // (he follows alice and lacks #1), and requests a connection. We
    // pump frames between the two devices until the exchange finishes —
    // in the deployed system Multipeer Connectivity moves these bytes.
    let mut queue: VecDeque<(PeerId, PeerId, Frame)> = bob
        .middleware_mut()
        .handle_frame(alice.peer_id(), Frame::Advertisement(ad), t, &mut rng)
        .into_iter()
        .map(|(dst, f)| (bob.peer_id(), dst, f))
        .collect();
    while let Some((src, dst, frame)) = queue.pop_front() {
        let target = if dst == alice.peer_id() {
            &mut alice
        } else {
            &mut bob
        };
        for (d, f) in target
            .middleware_mut()
            .handle_frame(src, frame, t, &mut rng)
        {
            let s = target.peer_id();
            queue.push_back((s, d, f));
        }
    }

    // The post arrived, was signature-verified against Alice's
    // certificate, and landed in Bob's feed.
    bob.process_events_at(t + SimDuration::from_secs(2));
    for post in bob.feed() {
        println!(
            "bob's feed: [{}#{}] \"{}\" ({} hop(s))",
            post.id.author, post.id.number, post.text, post.hops
        );
    }
    assert_eq!(bob.feed().len(), 1, "delivery must have happened");
    println!(
        "secure session stats: bob received {} bundle(s), {} security rejection(s)",
        bob.middleware().stats().bundles_received,
        bob.middleware().stats().security_rejections
    );
}
