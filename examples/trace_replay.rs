//! Record → serialize → replay: the *in vivo* evaluation loop.
//!
//! 1. Runs a reduced Gainesville field study live and records its
//!    encounter timeline with `sos-trace` (the "tape").
//! 2. Round-trips the tape through both codecs — the ONE-compatible
//!    text format and the delta-encoded binary format — writing the
//!    files under `target/`.
//! 3. Replays the reloaded tape through the identical driver and
//!    asserts the delivered set, stats, and delay records are
//!    **byte-identical** to the live run.
//! 4. Characterizes the tape (inter-contact CCDF, durations, aggregate
//!    contact graph) and compares it against a synthetic
//!    community-structured social trace of the same population size.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use sos::core::routing::SchemeKind;
use sos::experiments::replay::{delivered_set, record_field_study, replay_field_study};
use sos::experiments::report::delay_quantiles_line;
use sos::experiments::scenario::small_test_config;
use sos::trace::{
    codec_binary, codec_text, generate_social_trace, SocialTraceConfig, TraceAnalytics,
};

fn main() {
    let mut cfg = small_test_config(17, SchemeKind::InterestBased);
    cfg.days = 1;
    cfg.total_posts = 30;

    // --- 1. Record.
    println!(
        "recording a {}-day field study (seed {})...",
        cfg.days, cfg.seed
    );
    let (live, tape) = record_field_study(&cfg);
    println!(
        "tape: {} events over {} nodes ({} contacts)\n",
        tape.len(),
        tape.node_count(),
        tape.len() / 2
    );

    // --- 2. Serialize both ways and reload.
    let text = codec_text::to_text(&tape);
    let binary = codec_binary::to_binary(&tape);
    let out_dir = std::path::Path::new("target");
    let text_path = out_dir.join("field_study.sostrace");
    let bin_path = out_dir.join("field_study.sostrace.bin");
    std::fs::write(&text_path, &text).expect("write text trace");
    std::fs::write(&bin_path, &binary).expect("write binary trace");
    println!(
        "codecs: text {} bytes -> {}, binary {} bytes -> {} ({:.1}x smaller)",
        text.len(),
        text_path.display(),
        binary.len(),
        bin_path.display(),
        text.len() as f64 / binary.len() as f64
    );
    let reloaded = codec_binary::from_binary(&std::fs::read(&bin_path).expect("read binary trace"))
        .expect("decode binary trace");
    assert_eq!(reloaded, tape, "binary round trip must be exact");
    assert_eq!(
        codec_text::from_text(&std::fs::read_to_string(&text_path).expect("read text trace"))
            .expect("parse text trace"),
        tape,
        "text round trip must be exact"
    );

    // --- 3. Replay and verify determinism.
    let replayed = replay_field_study(&cfg, &reloaded);
    let live_set = delivered_set(&live);
    let replay_set = delivered_set(&replayed);
    assert_eq!(
        live_set, replay_set,
        "replay must deliver the identical set"
    );
    assert_eq!(
        live.totals, replayed.totals,
        "replay stats must be identical"
    );
    assert_eq!(
        live.metrics.delays.records(),
        replayed.metrics.delays.records(),
        "replay delays must be identical"
    );
    println!(
        "\nreplay: {} delivered (node, message) pairs — byte-identical to live",
        replay_set.len()
    );
    println!(
        "  transfers {}  delay {}",
        replayed.totals.bundles_received,
        delay_quantiles_line(&replayed.metrics.delays.cdf_all_hours())
    );

    // --- 4. Characterize recorded vs synthetic.
    println!("\n--- recorded tape analytics ---");
    println!("{}", TraceAnalytics::compute(&tape).report());
    let synthetic = generate_social_trace(&SocialTraceConfig {
        nodes: tape.node_count(),
        days: cfg.days,
        ..SocialTraceConfig::default()
    })
    .expect("valid synthetic config");
    println!("--- synthetic social trace (same population) ---");
    println!("{}", TraceAnalytics::compute(&synthetic).report());

    println!("ok: record -> codec round-trip -> replay is byte-identical");
}
