//! A routing-scheme comparison sweep on the spatial-grid contact
//! engine: the Fig. 4-style experiment the paper's companion platform
//! was built for, run at population scales the naive all-pairs scan
//! cannot reach.
//!
//! Runs the reduced field-study scenario under four routing schemes ×
//! three seeds, every replica on `sos-engine`'s event-driven grid
//! kernel, fanned out across CPU cores — then prints the per-scheme
//! aggregate table and a raw contact-engine scaling demonstration.
//!
//! ```sh
//! cargo run --release --example scale_sweep
//! ```

use rand::SeedableRng;
use sos::core::routing::SchemeKind;
use sos::engine::GridContactEngine;
use sos::experiments::scenario::small_test_config;
use sos::experiments::sweep::{format_table, scheme_sweep};
use sos::sim::geo::Bounds;
use sos::sim::mobility::random_waypoint::RandomWaypoint;
use sos::sim::{ContactSource, SimDuration, SimTime};
use std::time::Instant;

// Wall-clock is the point here: this example reports real elapsed
// time of the sweep and the grid kernel, not simulated behavior.
#[allow(clippy::disallowed_methods)]
fn main() {
    // Part 1: the scheme × seed sweep (middleware end-to-end).
    let base = small_test_config(1, SchemeKind::InterestBased);
    let schemes = [
        SchemeKind::Direct,
        SchemeKind::InterestBased,
        SchemeKind::Epidemic,
        SchemeKind::SprayAndWait,
    ];
    let seeds = [1, 2, 3];
    println!(
        "scheme sweep: {} schemes x {} seeds, grid engine, all cores\n",
        schemes.len(),
        seeds.len()
    );
    let start = Instant::now();
    let cells = scheme_sweep(&base, &schemes, &seeds, 0);
    println!("{}", format_table(&cells));
    println!("sweep wall time: {:.2?}\n", start.elapsed());

    // Part 2: raw contact detection at a population the O(n²) scan
    // cannot touch — 20 000 pedestrians over the field-study area.
    let nodes = 20_000;
    let rwp = RandomWaypoint::pedestrian(Bounds::gainesville());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let window = SimDuration::from_mins(10);
    let trajectories = (0..nodes).map(|_| rwp.generate(&mut rng, window)).collect();
    let engine = GridContactEngine::new(trajectories, 60.0, SimDuration::from_secs(30));
    let start = Instant::now();
    let intervals = engine.contact_intervals(SimTime::ZERO, SimTime::ZERO + window);
    println!(
        "grid engine: {} nodes, 10 min window -> {} contact intervals in {:.2?}",
        nodes,
        intervals.len(),
        start.elapsed()
    );
}
