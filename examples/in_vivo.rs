//! CI smoke for the in-vivo transport: a broker conducting **three
//! real `sos-node` OS processes** over TCP loopback on the committed
//! `haggle_mini` corpus, checked against the in-process mesh oracle.
//!
//! ```sh
//! cargo build --release -p sos-node   # the daemon binaries
//! cargo run --release --example in_vivo
//! ```
//!
//! Wall time is bounded by construction: every blocking edge in the
//! broker and daemons carries a read timeout or a retry cap, so a hung
//! or killed peer surfaces as a named error here instead of a stuck CI
//! job. The run must shut down cleanly (all daemons exit zero after
//! `Shutdown`) and deliver bundles, and its delivered set, per-node
//! stats, and journal must equal `run_mesh` on the same plan.

use sos_core::routing::SchemeKind;
use sos_node::broker::{Broker, BrokerConfig};
use sos_node::mesh::run_mesh;
use sos_node::provision::{load_trace_bytes, RunPlan};
use sos_sim::SimDuration;
use std::path::PathBuf;
use std::process::{Child, Command};

const PROCS: usize = 3;

/// The sibling `sos-node` binary: examples land in
/// `target/<profile>/examples/`, the workspace's binaries one level up.
fn daemon_exe() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .and_then(|examples| examples.parent())
        .ok_or("example binary has no target dir")?;
    let daemon = dir.join("sos-node");
    if !daemon.exists() {
        return Err(format!(
            "{} not built — run `cargo build -p sos-node` (matching profile) first",
            daemon.display()
        ));
    }
    Ok(daemon)
}

fn main() -> Result<(), String> {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/trace/tests/fixtures/haggle_mini.conn");
    let bytes = std::fs::read(&fixture).map_err(|e| format!("{}: {e}", fixture.display()))?;
    let trace = load_trace_bytes(&bytes).map_err(|e| format!("{}: {e}", fixture.display()))?;

    let plan = RunPlan {
        scheme: SchemeKind::Epidemic,
        seed: 7,
        total_posts: 12,
        ad_interval: SimDuration::from_secs(600),
    };

    // In-process oracle first: the same NodeRuntime fleet, no sockets.
    let mesh = run_mesh(&trace, &plan).map_err(|e| format!("mesh oracle: {e}"))?;

    let daemon = daemon_exe()?;
    let broker = Broker::bind(BrokerConfig {
        listen: "127.0.0.1:0".into(),
        num_procs: PROCS,
        plan,
    })
    .map_err(|e| format!("bind broker: {e}"))?;
    let addr = broker
        .local_addr()
        .map_err(|e| format!("broker addr: {e}"))?;
    println!(
        "in_vivo: conducting {} nodes across {PROCS} sos-node processes on {addr}",
        trace.node_count()
    );

    let mut children: Vec<Child> = Vec::new();
    for _ in 0..PROCS {
        children.push(
            Command::new(&daemon)
                .arg("--broker")
                .arg(addr.to_string())
                .spawn()
                .map_err(|e| format!("spawn {}: {e}", daemon.display()))?,
        );
    }

    let result = broker.run(&trace);
    if result.is_err() {
        // Don't leave orphans behind a failed conductor; the daemons'
        // own read timeouts would reap them eventually, CI need not wait.
        for child in &mut children {
            let _ = child.kill();
        }
    }
    for mut child in children {
        let status = child.wait().map_err(|e| format!("wait: {e}"))?;
        if !status.success() {
            return Err(format!("sos-node exited with {status}"));
        }
    }
    let vivo = result.map_err(|e| format!("in-vivo run: {e}"))?;

    print!("{}", sos_experiments::report::in_vivo_report(&vivo));

    if vivo.delivered.is_empty() {
        return Err("in-vivo run delivered nothing".into());
    }
    if vivo.delivered != mesh.delivered || vivo.stats != mesh.stats || vivo.journal != mesh.journal
    {
        return Err("in-vivo outcome diverged from the in-process mesh".into());
    }
    println!(
        "in_vivo: OK — {} deliveries over real sockets, byte-equal to the in-process mesh",
        vivo.delivered.len()
    );
    Ok(())
}
