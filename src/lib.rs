//! # sos — Secure Opportunistic Schemes middleware, reproduced in Rust
//!
//! Umbrella crate for the reproduction of Baker, Starke, Hill-Jarrett &
//! McNair, *"In Vivo Evaluation of the Secure Opportunistic Schemes
//! Middleware using a Delay Tolerant Social Network"* (ICDCS 2017,
//! arXiv:1703.08947).
//!
//! Re-exports every workspace crate under one roof; the `examples/`
//! directory and the cross-crate integration tests in `tests/` build
//! against this crate.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`crypto`] | SHA-2, HMAC, HKDF, ChaCha20-Poly1305, X25519, Ed25519, certificates, CA |
//! | [`graph`] | social-graph analytics (density, diameter, transitivity, ...) |
//! | [`sim`] | discrete-event kernel, mobility models, radio ranges, metric recorders |
//! | [`engine`] | spatial-grid contact engine, event-driven kernel, batch scenario runner |
//! | [`trace`] | contact-trace record/replay: codecs, synthetic social traces, analytics |
//! | [`net`] | MPC-style discovery, sessions, framing, authenticated handshake |
//! | [`obs`] | observability: metrics registry, event journal, span profiler |
//! | [`core`] | the SOS middleware: ad hoc / message / routing managers |
//! | [`social`] | AlleyOop Social: accounts, posts, follows, feeds, cloud |
//! | [`experiments`] | the §VI field-study scenario and the `repro` harness |
//!
//! ## Where to start
//!
//! * `cargo run --example quickstart` — two phones, one secure D2D post.
//! * `cargo run --release --example field_study` — the full 7-day
//!   Gainesville reproduction with paper-vs-measured tables.
//! * `cargo run --release -p sos-experiments --bin repro -- all` — every
//!   figure of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alleyoop as social;
pub use sos_core as core;
pub use sos_crypto as crypto;
pub use sos_engine as engine;
pub use sos_experiments as experiments;
pub use sos_graph as graph;
pub use sos_net as net;
pub use sos_obs as obs;
pub use sos_sim as sim;
pub use sos_trace as trace;
