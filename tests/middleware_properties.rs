//! Property-based integration tests across crate boundaries.

use proptest::prelude::*;
use rand::SeedableRng;
use sos::core::prelude::*;
use sos::net::{Advertisement, Frame};
use sos::social::{AlleyOopApp, Cloud};
use std::collections::VecDeque;

fn two_apps(seed: u64, scheme: SchemeKind) -> (AlleyOopApp, AlleyOopApp) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cloud = Cloud::new("CA", [1; 32]);
    let a = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(0),
        "alice",
        scheme,
        SimTime::ZERO,
        &mut rng,
    )
    .unwrap();
    let b = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(1),
        "bob",
        scheme,
        SimTime::ZERO,
        &mut rng,
    )
    .unwrap();
    (a, b)
}

fn pump(a: &mut AlleyOopApp, b: &mut AlleyOopApp, now: SimTime) {
    let mut r = rand::rngs::StdRng::seed_from_u64(9);
    let ad = a.middleware().advertisement(now);
    let mut queue: VecDeque<(PeerId, PeerId, Frame)> = b
        .middleware_mut()
        .handle_frame(a.peer_id(), Frame::Advertisement(ad), now, &mut r)
        .into_iter()
        .map(|(dst, f)| (b.peer_id(), dst, f))
        .collect();
    let mut guard = 0;
    while let Some((src, dst, frame)) = queue.pop_front() {
        guard += 1;
        assert!(guard < 100_000);
        let target = if dst == a.peer_id() { &mut *a } else { &mut *b };
        for (d, f) in target
            .middleware_mut()
            .handle_frame(src, frame, now, &mut r)
        {
            let s = target.peer_id();
            queue.push_back((s, d, f));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever sequence of posts Alice makes, one full sync hands Bob
    /// exactly that sequence, in order, with intact payloads.
    #[test]
    fn sync_transfers_every_post(payloads in prop::collection::vec("[a-zA-Z0-9 ]{0,60}", 1..12)) {
        let (mut alice, mut bob) = two_apps(1, SchemeKind::InterestBased);
        bob.follow(alice.user_id());
        for (i, text) in payloads.iter().enumerate() {
            alice.post(text, SimTime::from_secs(i as u64));
        }
        pump(&mut alice, &mut bob, SimTime::from_secs(100));
        bob.process_events_at(SimTime::from_secs(100));
        let feed = bob.feed();
        prop_assert_eq!(feed.len(), payloads.len());
        // Feed is newest-first; reverse into posting order.
        let mut got: Vec<String> = feed.iter().map(|p| p.text.clone()).collect();
        got.reverse();
        // Posts at identical creation times keep number order within the
        // store; compare as multisets by number instead.
        let mut by_number: Vec<(u64, String)> =
            feed.iter().map(|p| (p.id.number, p.text.clone())).collect();
        by_number.sort();
        for (i, (num, text)) in by_number.iter().enumerate() {
            prop_assert_eq!(*num, i as u64 + 1);
            prop_assert_eq!(text, &payloads[i]);
        }
    }

    /// Advertisements always reflect exactly the store summary.
    #[test]
    fn advertisement_matches_store(posts in 0usize..20) {
        let (mut alice, _) = two_apps(2, SchemeKind::Epidemic);
        for i in 0..posts {
            alice.post(&format!("p{i}"), SimTime::from_secs(i as u64));
        }
        let ad = alice.middleware().advertisement(SimTime::from_secs(100));
        if posts == 0 {
            prop_assert!(ad.summary.is_empty());
        } else {
            prop_assert_eq!(ad.latest_for(&alice.user_id()), Some(posts as u64));
        }
    }

    /// Syncing twice is idempotent: no duplicates, no extra transfers.
    #[test]
    fn resync_is_idempotent(posts in 1usize..8) {
        let (mut alice, mut bob) = two_apps(3, SchemeKind::InterestBased);
        bob.follow(alice.user_id());
        for i in 0..posts {
            alice.post(&format!("p{i}"), SimTime::from_secs(i as u64));
        }
        pump(&mut alice, &mut bob, SimTime::from_secs(50));
        bob.process_events_at(SimTime::from_secs(50));
        let received_once = bob.middleware().stats().bundles_received;
        pump(&mut alice, &mut bob, SimTime::from_secs(1000));
        bob.process_events_at(SimTime::from_secs(1000));
        prop_assert_eq!(bob.middleware().stats().bundles_received, received_once);
        prop_assert_eq!(bob.middleware().stats().bundles_duplicate, 0);
        prop_assert_eq!(bob.feed().len(), posts);
    }

    /// Frame codec round-trips arbitrary advertisement contents.
    #[test]
    fn advertisement_frame_roundtrip(
        entries in prop::collection::btree_map("[a-z]{1,10}", 0u64..1_000_000, 0..20),
        peer in 0u32..1000,
    ) {
        let mut ad = Advertisement::new(
            PeerId(peer),
            sos::crypto::UserId::from_str_padded("advertiser"),
        );
        for (name, latest) in &entries {
            ad.insert(sos::crypto::UserId::from_str_padded(name), *latest);
        }
        let frame = Frame::Advertisement(ad);
        let decoded = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Hop counts never decrease along a relay chain.
    #[test]
    fn hops_monotone_along_chain(chain_len in 2usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut cloud = Cloud::new("CA", [1; 32]);
        let mut apps: Vec<AlleyOopApp> = (0..chain_len)
            .map(|i| AlleyOopApp::sign_up(
                &mut cloud, PeerId(i as u32), &format!("n{i}"),
                SchemeKind::Epidemic, SimTime::ZERO, &mut rng).unwrap())
            .collect();
        let author = apps[0].user_id();
        for app in apps.iter_mut().skip(1) {
            app.follow(author);
        }
        apps[0].post("chain letter", SimTime::ZERO);
        // Relay strictly down the chain: 0→1→2→...
        for i in 1..chain_len {
            let (left, right) = apps.split_at_mut(i);
            pump(&mut left[i - 1], &mut right[0], SimTime::from_secs(i as u64 * 10));
            right[0].process_events_at(SimTime::from_secs(i as u64 * 10));
        }
        for (i, app) in apps.iter().enumerate().skip(1) {
            let feed = app.feed();
            prop_assert_eq!(feed.len(), 1);
            prop_assert_eq!(feed[0].hops, i as u32, "node {} hop count", i);
        }
    }
}
