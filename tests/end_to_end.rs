//! Full-stack integration: AlleyOop apps over the SOS middleware over
//! the simulated MPC substrate, driven by the discrete-event driver.

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::experiments::driver::{Driver, DriverConfig};
use sos::sim::geo::Point;
use sos::sim::mobility::trace::Trajectory;
use sos::sim::{SimDuration, SimTime, World};
use sos::social::{AlleyOopApp, Cloud};

fn sign_up_group(n: usize, scheme: SchemeKind, seed: u64) -> Vec<AlleyOopApp> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cloud = Cloud::new("Test CA", [1; 32]);
    (0..n)
        .map(|i| {
            AlleyOopApp::sign_up(
                &mut cloud,
                PeerId(i as u32),
                &format!("user-{i}"),
                scheme,
                SimTime::ZERO,
                &mut rng,
            )
            .expect("unique handle")
        })
        .collect()
}

/// Two stationary nodes in range: a post propagates within an ad period.
#[test]
fn colocated_pair_delivers_quickly() {
    let mut apps = sign_up_group(2, SchemeKind::InterestBased, 1);
    let alice_uid = apps[0].user_id();
    apps[1].follow(alice_uid);

    let world = World::new(
        vec![
            Trajectory::stationary(Point::new(0.0, 0.0)),
            Trajectory::stationary(Point::new(20.0, 0.0)),
        ],
        60.0,
        SimDuration::from_secs(10),
    );
    let followers = vec![vec![1], vec![]];
    let end = SimTime::from_mins(30);
    let mut driver = Driver::new(
        apps,
        world,
        followers,
        DriverConfig {
            ad_interval: SimDuration::from_secs(60),
            infra_available: false,
            seed: 5,
        },
        end,
    );
    driver.schedule_post(SimTime::from_secs(10), 0);
    let (metrics, apps) = driver.run();

    assert_eq!(metrics.posts, 1);
    assert_eq!(metrics.delays.len(), 1, "one interested delivery");
    let delay_h = metrics.delays.cdf_all_hours().max().unwrap();
    assert!(delay_h < 0.1, "delivery within minutes, got {delay_h} h");
    assert_eq!(metrics.delays.records()[0].hops, 1);
    assert_eq!(apps[1].feed().len(), 1);
    assert_eq!(metrics.security_alerts, 0);
}

/// Out-of-range nodes never exchange anything.
#[test]
fn isolated_nodes_never_communicate() {
    let mut apps = sign_up_group(2, SchemeKind::Epidemic, 2);
    let a = apps[0].user_id();
    apps[1].follow(a);
    let world = World::new(
        vec![
            Trajectory::stationary(Point::new(0.0, 0.0)),
            Trajectory::stationary(Point::new(5_000.0, 0.0)),
        ],
        60.0,
        SimDuration::from_secs(10),
    );
    let mut driver = Driver::new(
        apps,
        world,
        vec![vec![1], vec![]],
        DriverConfig::default(),
        SimTime::from_hours(2),
    );
    driver.schedule_post(SimTime::from_secs(5), 0);
    let (metrics, apps) = driver.run();
    assert_eq!(metrics.delays.len(), 0);
    assert_eq!(apps[1].feed().len(), 0);
    assert_eq!(apps[1].middleware().stats().bundles_received, 0);
}

/// The store-carry-forward chain: A meets B, then B travels to C.
/// C gets A's message at two hops without ever meeting A.
#[test]
fn store_carry_forward_two_hops() {
    let mut apps = sign_up_group(3, SchemeKind::Epidemic, 3);
    let a_uid = apps[0].user_id();
    apps[1].follow(a_uid);
    apps[2].follow(a_uid);

    // A fixed at x=0; C fixed at x=2000; B commutes between them.
    let b_traj = Trajectory::new(vec![
        (SimTime::ZERO, Point::new(0.0, 10.0)),
        (SimTime::from_mins(30), Point::new(0.0, 10.0)),
        (SimTime::from_mins(60), Point::new(2_000.0, 10.0)),
        (SimTime::from_mins(120), Point::new(2_000.0, 10.0)),
    ])
    .unwrap();
    let world = World::new(
        vec![
            Trajectory::stationary(Point::new(0.0, 0.0)),
            b_traj,
            Trajectory::stationary(Point::new(2_000.0, 0.0)),
        ],
        60.0,
        SimDuration::from_secs(10),
    );
    let mut driver = Driver::new(
        apps,
        world,
        vec![vec![1, 2], vec![], vec![]],
        DriverConfig {
            ad_interval: SimDuration::from_secs(30),
            infra_available: false,
            seed: 9,
        },
        SimTime::from_hours(3),
    );
    driver.schedule_post(SimTime::from_secs(60), 0);
    let (metrics, apps) = driver.run();

    assert_eq!(metrics.delays.len(), 2, "B and C both interested");
    let hops: Vec<u32> = metrics.delays.records().iter().map(|r| r.hops).collect();
    assert!(hops.contains(&1), "B got it directly");
    assert!(hops.contains(&2), "C got it via B: {hops:?}");
    assert_eq!(apps[2].feed().len(), 1);
    assert_eq!(apps[2].feed()[0].hops, 2);
}

/// Mid-transfer disconnection: the receiver re-syncs at the next
/// encounter (the message manager "knows what messages were not
/// transferred").
#[test]
fn interrupted_transfer_resumes_next_encounter() {
    let mut apps = sign_up_group(2, SchemeKind::InterestBased, 4);
    let a_uid = apps[0].user_id();
    apps[1].follow(a_uid);

    // B passes briefly by A twice with a long gap.
    let b_traj = Trajectory::new(vec![
        (SimTime::ZERO, Point::new(5_000.0, 0.0)),
        (SimTime::from_mins(10), Point::new(30.0, 0.0)),
        (SimTime::from_mins(12), Point::new(30.0, 0.0)),
        (SimTime::from_mins(22), Point::new(5_000.0, 0.0)),
        (SimTime::from_mins(60), Point::new(30.0, 0.0)),
        (SimTime::from_mins(75), Point::new(30.0, 0.0)),
        (SimTime::from_mins(85), Point::new(5_000.0, 0.0)),
    ])
    .unwrap();
    let world = World::new(
        vec![Trajectory::stationary(Point::new(0.0, 0.0)), b_traj],
        60.0,
        SimDuration::from_secs(10),
    );
    let mut driver = Driver::new(
        apps,
        world,
        vec![vec![1], vec![]],
        DriverConfig {
            ad_interval: SimDuration::from_secs(30),
            infra_available: false,
            seed: 31,
        },
        SimTime::from_hours(2),
    );
    // Many posts: some may not fit in the first brief contact.
    for i in 0..20 {
        driver.schedule_post(SimTime::from_secs(30 + i), 0);
    }
    let (metrics, apps) = driver.run();
    assert_eq!(
        metrics.delays.len(),
        20,
        "all posts eventually delivered across encounters"
    );
    assert_eq!(apps[1].feed().len(), 20);
}

/// Runtime scheme switching mid-simulation is safe.
#[test]
fn scheme_switch_between_encounters() {
    let mut apps = sign_up_group(2, SchemeKind::Direct, 6);
    let a_uid = apps[0].user_id();
    apps[1].follow(a_uid);
    apps[1].middleware_mut().set_scheme(SchemeKind::Epidemic);
    assert_eq!(apps[1].middleware().scheme_kind(), SchemeKind::Epidemic);
    // The store and subscriptions survive the switch.
    assert!(apps[1].following().contains(&a_uid));
}
