//! Acceptance test for the corpora importer subsystem: every
//! committed fixture imports with full accounting, and **all five**
//! routing schemes complete a field study on the imported
//! real-deployment timeline via the replay driver.

use sos::experiments::corpus::{run_corpus_study_all_schemes, CorpusStudyConfig};
use sos::trace::corpora::{import_bytes, CorpusFormat};
use std::path::PathBuf;

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/trace/tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn all_five_schemes_complete_on_every_imported_fixture() {
    for (name, format) in [
        ("haggle_mini.conn", CorpusFormat::Crawdad),
        ("haggle_mini.conn.gz", CorpusFormat::Crawdad),
        ("reality_mini.txt", CorpusFormat::RealityMining),
        ("sassy_mini.csv", CorpusFormat::Sassy),
    ] {
        let corpus = import_bytes(format, &fixture(name)).expect("fixture imports");
        assert!(
            corpus.report.accounts_for_everything(),
            "{name}: {:?}",
            corpus.report
        );
        let outcomes = run_corpus_study_all_schemes(
            &corpus.trace,
            &CorpusStudyConfig {
                total_posts: 15,
                ..CorpusStudyConfig::default()
            },
        );
        assert_eq!(outcomes.len(), 5, "{name}");
        for o in &outcomes {
            assert_eq!(o.posts, 15, "{name}/{:?} did not complete", o.scheme);
            assert_eq!(o.security_alerts, 0, "{name}/{:?}", o.scheme);
        }
        assert!(
            outcomes.iter().any(|o| o.interested_deliveries > 0),
            "{name}: no scheme delivered anything"
        );
    }
}
