//! Routing-scheme comparative properties on identical scenarios: the
//! qualitative orderings the DTN literature (and the paper's §III-B)
//! predicts must emerge from the full stack.

use sos::core::prelude::*;
use sos::experiments::scenario::{run_field_study, small_test_config};

#[test]
fn epidemic_dominates_transfers() {
    let seeds = [10u64, 20];
    for seed in seeds {
        let epi = run_field_study(&small_test_config(seed, SchemeKind::Epidemic));
        let ib = run_field_study(&small_test_config(seed, SchemeKind::InterestBased));
        assert!(
            epi.transfers() >= ib.transfers(),
            "seed {seed}: epidemic {} < IB {}",
            epi.transfers(),
            ib.transfers()
        );
    }
}

#[test]
fn interest_based_has_no_uninterested_transfers() {
    let outcome = run_field_study(&small_test_config(30, SchemeKind::InterestBased));
    // Every IB transfer is to a subscriber of the author, so transfers
    // ≈ interested deliveries + duplicates.
    let stats = &outcome.totals;
    assert_eq!(
        stats.bundles_received - stats.bundles_duplicate,
        outcome.metrics.delays.len() as u64,
        "IB transfers map 1:1 onto interested deliveries"
    );
}

#[test]
fn direct_deliveries_are_all_one_hop() {
    let outcome = run_field_study(&small_test_config(40, SchemeKind::Direct));
    for record in outcome.metrics.delays.records() {
        assert_eq!(record.hops, 1, "direct delivery must be author→subscriber");
    }
}

#[test]
fn epidemic_delivery_ratio_at_least_direct() {
    let seed = 50;
    let epi = run_field_study(&small_test_config(seed, SchemeKind::Epidemic));
    let direct = run_field_study(&small_test_config(seed, SchemeKind::Direct));
    assert!(
        epi.metrics.delivery.overall_ratio() >= direct.metrics.delivery.overall_ratio() - 1e-9,
        "epidemic {} < direct {}",
        epi.metrics.delivery.overall_ratio(),
        direct.metrics.delivery.overall_ratio()
    );
}

#[test]
fn spray_and_wait_bounds_replication_overhead() {
    let seed = 60;
    let epi = run_field_study(&small_test_config(seed, SchemeKind::Epidemic));
    let saw = run_field_study(&small_test_config(seed, SchemeKind::SprayAndWait));
    // Spray-and-wait must not replicate more than epidemic.
    assert!(
        saw.transfers() <= epi.transfers(),
        "spray {} > epidemic {}",
        saw.transfers(),
        epi.transfers()
    );
}

#[test]
fn interest_predictive_at_least_ib_deliveries() {
    let seed = 70;
    let ib = run_field_study(&small_test_config(seed, SchemeKind::InterestBased));
    let ip = run_field_study(&small_test_config(seed, SchemeKind::InterestPredictive));
    // The predictive cache only *adds* carriers relative to IB with zero
    // holdoff; with the default IB holdoff the comparison is loose, so
    // just require the same order of magnitude and no regression > 40%.
    assert!(
        (ip.metrics.delays.len() as f64) >= ib.metrics.delays.len() as f64 * 0.6,
        "interest-predictive {} collapsed vs IB {}",
        ip.metrics.delays.len(),
        ib.metrics.delays.len()
    );
}

#[test]
fn all_schemes_deliver_something_and_stay_secure() {
    for kind in SchemeKind::ALL {
        let outcome = run_field_study(&small_test_config(80, kind));
        assert!(
            outcome.metrics.delays.len() > 5,
            "{kind}: too few deliveries"
        );
        assert_eq!(
            outcome.metrics.security_alerts, 0,
            "{kind}: unexpected security alerts among honest nodes"
        );
        // CDF sanity: monotone, bounded.
        let cdf = outcome.metrics.delays.cdf_all_hours();
        assert!(cdf.fraction_le(0.0) <= cdf.fraction_le(1000.0));
        assert!(cdf.fraction_le(1000.0) <= 1.0 + 1e-12);
    }
}
