//! Failure injection across the full stack: lossy radios, mid-transfer
//! mobility breaks, hostile peers and store pressure — the system must
//! degrade gracefully, never corrupt state, and recover at the next
//! encounter (§III-C: the message manager "knows what messages were not
//! transferred").

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::core::SosConfig;
use sos::experiments::driver::{Driver, DriverConfig};
use sos::experiments::scenario::{run_field_study, small_test_config};
use sos::sim::geo::Point;
use sos::sim::mobility::trace::Trajectory;
use sos::sim::{SimDuration, SimTime, World};
use sos::social::{AlleyOopApp, Cloud};

fn sign_up_group(n: usize, scheme: SchemeKind, seed: u64) -> Vec<AlleyOopApp> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cloud = Cloud::new("Test CA", [1; 32]);
    (0..n)
        .map(|i| {
            AlleyOopApp::sign_up(
                &mut cloud,
                PeerId(i as u32),
                &format!("user-{i}"),
                scheme,
                SimTime::ZERO,
                &mut rng,
            )
            .expect("unique handle")
        })
        .collect()
}

/// The field study runs over lossy links (Bluetooth ~2 %, WiFi ~1 %
/// frame loss); losses must occur *and* not prevent delivery.
#[test]
fn frame_loss_happens_and_is_survivable() {
    let outcome = run_field_study(&small_test_config(5, SchemeKind::InterestBased));
    assert!(
        outcome.metrics.frames_lost > 0,
        "the link model must actually drop frames"
    );
    assert!(
        outcome.metrics.delays.len() > 10,
        "deliveries must still happen: {}",
        outcome.metrics.delays.len()
    );
    // Losses are a small fraction of traffic (sanity on the loss model).
    let loss_rate = outcome.metrics.frames_lost as f64 / outcome.metrics.frames_sent as f64;
    assert!(loss_rate < 0.05, "loss rate {loss_rate} implausible");
}

/// A contact so short that the sync cannot complete: no corruption, and
/// the next (long) contact finishes the job.
#[test]
fn flapping_contact_recovers() {
    let mut apps = sign_up_group(2, SchemeKind::InterestBased, 7);
    let author = apps[0].user_id();
    apps[1].follow(author);

    // B blips in and out of range every couple of minutes, then settles
    // next to A.
    let mut waypoints = Vec::new();
    for k in 0..10u64 {
        let base = k * 240;
        waypoints.push((SimTime::from_secs(base), Point::new(5_000.0, 0.0)));
        waypoints.push((SimTime::from_secs(base + 100), Point::new(30.0, 0.0)));
        waypoints.push((SimTime::from_secs(base + 130), Point::new(30.0, 0.0)));
        waypoints.push((SimTime::from_secs(base + 230), Point::new(5_000.0, 0.0)));
    }
    waypoints.push((SimTime::from_secs(3000), Point::new(30.0, 0.0)));
    waypoints.push((SimTime::from_hours(2), Point::new(30.0, 0.0)));
    let world = World::new(
        vec![
            Trajectory::stationary(Point::new(0.0, 0.0)),
            Trajectory::new(waypoints).unwrap(),
        ],
        60.0,
        SimDuration::from_secs(10),
    );
    let mut driver = Driver::new(
        apps,
        world,
        vec![vec![1], vec![]],
        DriverConfig {
            ad_interval: SimDuration::from_secs(45),
            infra_available: false,
            seed: 3,
        },
        SimTime::from_hours(2),
    );
    for i in 0..50 {
        driver.schedule_post(SimTime::from_secs(10 + i), 0);
    }
    let (metrics, apps) = driver.run();
    assert_eq!(metrics.delays.len(), 50, "all posts delivered eventually");
    assert_eq!(apps[1].feed().len(), 50);
    assert_eq!(metrics.security_alerts, 0);
}

/// Store pressure: a tiny capacity cap forces eviction of carried
/// gossip while the node keeps functioning and its own posts survive.
#[test]
fn store_pressure_keeps_node_functional() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut cloud = Cloud::new("Test CA", [1; 32]);
    let alice = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(0),
        "alice",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut rng,
    )
    .unwrap();
    let bob = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(1),
        "bob",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut rng,
    )
    .unwrap();
    let mut alice = alice;
    let mut bob = bob;

    // Rebuild bob's middleware with a tight store cap via config: the
    // public API route is Sos::with_config, so emulate by maintaining
    // manually here.
    for i in 0..30 {
        alice.post(&format!("flood {i}"), SimTime::from_secs(i));
    }
    // Manual pump (stationary, always in range).
    let mut queue: std::collections::VecDeque<(PeerId, PeerId, sos::net::Frame)> =
        std::collections::VecDeque::new();
    let ad = alice.middleware().advertisement(SimTime::from_secs(100));
    for (d, f) in bob.middleware_mut().handle_frame(
        alice.peer_id(),
        sos::net::Frame::Advertisement(ad),
        SimTime::from_secs(100),
        &mut rng,
    ) {
        queue.push_back((bob.peer_id(), d, f));
    }
    while let Some((src, dst, frame)) = queue.pop_front() {
        let target = if dst == alice.peer_id() {
            &mut alice
        } else {
            &mut bob
        };
        for (d, f) in
            target
                .middleware_mut()
                .handle_frame(src, frame, SimTime::from_secs(100), &mut rng)
        {
            let s = target.peer_id();
            queue.push_back((s, d, f));
        }
    }
    bob.post("bob's own", SimTime::from_secs(200));
    assert_eq!(bob.middleware().store().len(), 31);
    // Maintenance with a cap of 5 drops oldest gossip, never bob's post.
    let evicted = {
        let sos_ref = bob.middleware_mut();
        // Apply a TTL-style cleanup through the public maintain API by
        // temporarily using capacity eviction on a fresh instance is not
        // possible; instead verify via with_config on a new node below.
        sos_ref.maintain(SimTime::from_secs(300))
    };
    assert_eq!(evicted, 0, "no limits configured on this node");

    // A node built with limits enforces them end to end.
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
    let mut cloud2 = Cloud::new("CA2", [2; 32]);
    let capped_app = AlleyOopApp::sign_up(
        &mut cloud2,
        PeerId(7),
        "capped",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut rng2,
    )
    .unwrap();
    let identity_check = capped_app.middleware().identity().certificate().subject;
    assert_eq!(identity_check, capped_app.user_id());
    let mut capped = sos::core::Sos::with_config(
        PeerId(7),
        capped_app.middleware().identity().clone(),
        SchemeKind::Epidemic,
        SosConfig {
            max_stored_bundles: Some(5),
            ..SosConfig::default()
        },
    );
    for i in 0..20u64 {
        capped
            .post(MessageKind::Post, vec![i as u8], SimTime::from_secs(i))
            .unwrap();
    }
    // Own messages are protected: all 20 remain despite the cap.
    capped.maintain(SimTime::from_secs(100));
    assert_eq!(capped.store().len(), 20, "own posts never evicted");
}

/// Ten hostile certificates hammering one node: every attempt is
/// rejected, state stays clean, and honest traffic still flows.
#[test]
fn hostile_swarm_rejected_honest_traffic_flows() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut cloud = Cloud::new("Real CA", [1; 32]);
    let mut honest_a = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(0),
        "honest-a",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut rng,
    )
    .unwrap();
    let mut honest_b = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(1),
        "honest-b",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut rng,
    )
    .unwrap();

    let mut attackers: Vec<AlleyOopApp> = (0..10)
        .map(|i| {
            let mut evil_cloud = Cloud::new("Real CA", [100 + i; 32]);
            AlleyOopApp::sign_up(
                &mut evil_cloud,
                PeerId(10 + i as u32),
                &format!("evil-{i}"),
                SchemeKind::Epidemic,
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap()
        })
        .collect();

    // Honest-a has content; every attacker browses its advertisement and
    // invites a session — honest-a, as responder, must reject each
    // foreign certificate at the handshake.
    honest_a.post("bait", SimTime::from_secs(1));
    for attacker in &mut attackers {
        attacker.post("malware", SimTime::from_secs(1));
        let ad = honest_a.middleware().advertisement(SimTime::from_secs(2));
        let mut queue: std::collections::VecDeque<(PeerId, PeerId, sos::net::Frame)> =
            std::collections::VecDeque::new();
        for (d, f) in attacker.middleware_mut().handle_frame(
            honest_a.peer_id(),
            sos::net::Frame::Advertisement(ad),
            SimTime::from_secs(2),
            &mut rng,
        ) {
            queue.push_back((attacker.peer_id(), d, f));
        }
        let mut guard = 0;
        while let Some((src, dst, frame)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 1000);
            let target: &mut AlleyOopApp = if dst == honest_a.peer_id() {
                &mut honest_a
            } else {
                attacker
            };
            for (d, f) in
                target
                    .middleware_mut()
                    .handle_frame(src, frame, SimTime::from_secs(2), &mut rng)
            {
                let s = target.peer_id();
                queue.push_back((s, d, f));
            }
        }
    }
    assert_eq!(
        honest_a.middleware().store().len(),
        1,
        "only honest-a's own post stored, nothing hostile"
    );
    assert!(honest_a.middleware().stats().security_rejections >= 10);
    assert_eq!(
        honest_a.middleware().session_count(),
        0,
        "no lingering sessions"
    );

    // Honest traffic still flows afterwards.
    honest_b.follow(honest_a.user_id());
    honest_a.post("all good", SimTime::from_secs(10));
    let ad = honest_a.middleware().advertisement(SimTime::from_secs(11));
    let mut queue: std::collections::VecDeque<(PeerId, PeerId, sos::net::Frame)> =
        std::collections::VecDeque::new();
    for (d, f) in honest_b.middleware_mut().handle_frame(
        honest_a.peer_id(),
        sos::net::Frame::Advertisement(ad),
        SimTime::from_secs(11),
        &mut rng,
    ) {
        queue.push_back((honest_b.peer_id(), d, f));
    }
    while let Some((src, dst, frame)) = queue.pop_front() {
        let target = if dst == honest_a.peer_id() {
            &mut honest_a
        } else {
            &mut honest_b
        };
        for (d, f) in
            target
                .middleware_mut()
                .handle_frame(src, frame, SimTime::from_secs(11), &mut rng)
        {
            let s = target.peer_id();
            queue.push_back((s, d, f));
        }
    }
    honest_b.process_events_at(SimTime::from_secs(12));
    assert_eq!(honest_b.feed().len(), 2, "both of honest-a's posts arrive");
}
