//! Cross-crate integration: the record/replay subsystem through the
//! public `sos::` facade — recording from both geometric kernels,
//! replaying through the field-study machinery, and driving schemes
//! from a purely synthetic social trace (no geometry anywhere).

use sos::core::routing::SchemeKind;
use sos::engine::GridContactEngine;
use sos::experiments::replay::{delivered_set, record_field_study_trace, replay_field_study};
use sos::experiments::scenario::{
    field_study_trajectories, run_field_study, run_field_study_with, small_test_config,
};
use sos::sim::{EncounterSource, SimDuration, SimTime};
use sos::trace::{
    codec_binary, codec_text, generate_social_trace, ContactTrace, SocialTraceConfig,
    TraceAnalytics, TraceContactSource,
};

/// Recording from the naive scan and from the grid kernel produces the
/// same tape, and replaying it reproduces the live run exactly.
#[test]
fn record_replay_is_exact_across_kernels() {
    let mut cfg = small_test_config(31, SchemeKind::Epidemic);
    cfg.days = 1;
    cfg.total_posts = 20;

    let tape = record_field_study_trace(&cfg);
    let engine = GridContactEngine::new(
        field_study_trajectories(&cfg),
        sos::sim::RadioTech::max_range_m(cfg.infra_available),
        cfg.contact_tick,
    );
    let end = SimTime::from_hours(cfg.days * 24);
    let engine_tape = ContactTrace::record(&engine, SimTime::ZERO, end).unwrap();
    assert_eq!(tape, engine_tape, "kernels must record identical tapes");

    let live = run_field_study(&cfg);
    let replayed = replay_field_study(&cfg, &tape);
    assert_eq!(delivered_set(&live), delivered_set(&replayed));
    assert_eq!(live.totals, replayed.totals);
}

/// A synthetic community trace drives the full scheme machinery with
/// no geometry at all — the new workload axis.
#[test]
fn synthetic_social_trace_drives_schemes() {
    let synthetic = generate_social_trace(&SocialTraceConfig {
        nodes: 10, // the field-study population
        days: 2,
        intra_contacts_per_day: 6.0,
        ..SocialTraceConfig::default()
    })
    .unwrap();
    let analytics = TraceAnalytics::compute(&synthetic);
    assert!(analytics.graph.connected, "trace must connect the cohort");

    let mut cfg = small_test_config(3, SchemeKind::Epidemic);
    cfg.days = 2;
    cfg.total_posts = 20;
    let outcome = run_field_study_with(&cfg, TraceContactSource::new(synthetic));
    assert_eq!(outcome.metrics.posts, 20);
    assert!(
        outcome.totals.bundles_received > 0,
        "synthetic contacts must carry transfers"
    );
    // Trace sources know no geometry: the Fig. 4b map stays empty.
    assert!(outcome.metrics.map.is_empty());
}

/// Replaying a sub-window keeps contacts that span its start.
#[test]
fn windowed_replay_preserves_open_contacts() {
    let mut cfg = small_test_config(7, SchemeKind::Epidemic);
    cfg.days = 1;
    let tape = record_field_study_trace(&cfg);
    let source = TraceContactSource::new(tape.clone());
    let mid = SimTime::from_hours(12);
    let end = SimTime::from_hours(24);
    let window = source.encounter_events(mid, end);
    // Window invariant: phases alternate per pair starting Up — i.e.
    // the window itself is a valid trace.
    assert!(ContactTrace::new(tape.node_count(), tape.range_m(), window).is_ok());
}

/// Codec round-trips through the facade, plus ONE-style import.
#[test]
fn codecs_round_trip_via_facade() {
    let trace = generate_social_trace(&SocialTraceConfig {
        days: 1,
        ..SocialTraceConfig::default()
    })
    .unwrap();
    assert_eq!(
        codec_text::from_text(&codec_text::to_text(&trace)).unwrap(),
        trace
    );
    assert_eq!(
        codec_binary::from_binary(&codec_binary::to_binary(&trace)).unwrap(),
        trace
    );
    // ONE-simulator connectivity lines import (a, b order-insensitive).
    let one = "10 CONN 5 2 up\n400.5 CONN 5 2 down\n";
    let imported = codec_text::from_text(one).unwrap();
    assert_eq!(imported.node_count(), 6);
    assert_eq!(imported.events()[0].a, 2);
    assert_eq!(imported.events()[0].b, 5);
}

/// Malformed external inputs surface as errors, never panics.
#[test]
fn malformed_ingestion_cannot_panic() {
    use sos::sim::mobility::trace::Trajectory;
    use sos::sim::{Point, SimError};

    // Unordered trajectory waypoints -> SimError -> SosError.
    let err = Trajectory::new(vec![
        (SimTime::from_secs(9), Point::new(0.0, 0.0)),
        (SimTime::from_secs(1), Point::new(1.0, 1.0)),
    ])
    .unwrap_err();
    assert_eq!(err, SimError::UnorderedWaypoints { index: 1 });
    let middleware_err: sos::core::SosError = err.into();
    assert!(middleware_err.to_string().contains("trajectory"));

    // Corrupt trace bytes -> TraceError.
    assert!(codec_binary::from_binary(b"garbage!garbage!").is_err());
    assert!(codec_text::from_text("1 2 3\n").is_err());

    // Valid lines, impossible timeline -> TraceError.
    assert!(codec_text::from_text("# nodes 2\n5 0 1 down 1.0\n").is_err());
}

/// The sim tick window of a recorded tape is irrelevant to replay: the
/// trace replays on its own event times, at any granularity.
#[test]
fn replay_is_tick_free() {
    let mut cfg = small_test_config(11, SchemeKind::Direct);
    cfg.days = 1;
    cfg.contact_tick = SimDuration::from_secs(120); // coarse recording
    let tape = record_field_study_trace(&cfg);
    let live = run_field_study(&cfg);
    let replayed = replay_field_study(&cfg, &tape);
    assert_eq!(delivered_set(&live), delivered_set(&replayed));
}
