//! Acceptance test for delivery forensics (PR 9): on every committed
//! corpus fixture, for **all five** routing schemes, every authored
//! bundle is either delivered or assigned exactly one root cause —
//! `delivered + root-caused undelivered = authored`, no bundle
//! unaccounted for — and the classification is deterministic.

use sos::core::routing::SchemeKind;
use sos::experiments::corpus::{followers_from_trace, run_corpus_study_full, CorpusStudyConfig};
use sos::experiments::observe::RunObserver;
use sos::experiments::report::{follower_destinations, path_report, scheme_traits};
use sos::obs::Verdict;
use sos::trace::corpora::{import_bytes, CorpusFormat};
use std::path::PathBuf;

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/trace/tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn forensics_is_exhaustive_for_every_scheme_on_every_fixture() {
    for (name, format) in [
        ("haggle_mini.conn", CorpusFormat::Crawdad),
        ("reality_mini.txt", CorpusFormat::RealityMining),
        ("sassy_mini.csv", CorpusFormat::Sassy),
    ] {
        let corpus = import_bytes(format, &fixture(name)).expect("fixture imports");
        let trace = &corpus.trace;
        let followers = followers_from_trace(trace);
        let destinations = follower_destinations(&followers);

        for scheme in SchemeKind::ALL {
            let cfg = CorpusStudyConfig {
                total_posts: 15,
                scheme,
                ..CorpusStudyConfig::default()
            };
            let observer = RunObserver::new();
            let run = run_corpus_study_full(trace, &cfg, Some(&observer));
            let observation = observer.finish();
            let forensics = observation
                .provenance()
                .classify(&destinations, scheme_traits(scheme));

            // Exhaustive: one verdict per authored bundle, and the
            // delivered/undelivered split covers all of them.
            assert_eq!(
                forensics.authored() as u64,
                run.outcome.posts,
                "{name}/{scheme:?}: authored != posts"
            );
            assert!(
                forensics.accounts_for_everything(),
                "{name}/{scheme:?}: forensics lost bundles"
            );
            assert_eq!(
                forensics.delivered() + forensics.undelivered(),
                forensics.authored(),
                "{name}/{scheme:?}: delivered + undelivered != authored"
            );
            // Every undelivered verdict carries exactly one cause, and
            // the per-cause counts sum back to the undelivered total.
            let cause_sum: u64 = forensics.cause_counts().iter().map(|(_, n)| n).sum();
            assert_eq!(
                cause_sum as usize,
                forensics.undelivered(),
                "{name}/{scheme:?}: cause counts do not partition the undelivered set"
            );
            assert_eq!(
                forensics.truncated, 0,
                "{name}/{scheme:?}: unexpected drops"
            );
            for (key, verdict) in &forensics.verdicts {
                if let Verdict::Undelivered(cause) = verdict {
                    assert!(
                        !cause.label().is_empty(),
                        "{name}/{scheme:?}: {key} has an unlabeled cause"
                    );
                }
            }

            // Deterministic: a second observed run classifies and
            // renders byte-identically.
            let observer2 = RunObserver::new();
            run_corpus_study_full(trace, &cfg, Some(&observer2));
            let observation2 = observer2.finish();
            let forensics2 = observation2
                .provenance()
                .classify(&destinations, scheme_traits(scheme));
            assert_eq!(
                forensics.verdicts, forensics2.verdicts,
                "{name}/{scheme:?}: verdicts not reproducible"
            );
            assert_eq!(
                path_report(name, &observation, &followers, scheme, 3),
                path_report(name, &observation2, &followers, scheme, 3),
                "{name}/{scheme:?}: PATH-REPORT not reproducible"
            );
        }
    }
}
