//! Integration checks on the headline reproduction: the Fig. 4a graph
//! statistics must match the paper exactly (they are deterministic), and
//! a reduced field study must show the paper's qualitative shape.

use sos::experiments::scenario::{run_field_study, small_test_config, FieldStudyConfig};
use sos::experiments::social;
use sos::graph::SocialGraphReport;

#[test]
fn fig4a_statistics_match_paper() {
    let report = social::field_study_report();
    assert_eq!(report.nodes, 10);
    assert_eq!(report.subscriptions, 46, "paper: 46 subscriptions");
    assert!((report.density - 0.64).abs() < 0.01, "paper: density 0.64");
    assert_eq!(report.diameter, 2, "paper: diameter 2");
    assert_eq!(report.radius, 1, "paper: radius 1");
    assert_eq!(
        report.center,
        vec![social::CENTER_A, social::CENTER_B],
        "paper: centers 6 and 7"
    );
    assert!(
        (report.average_shortest_path - 1.3).abs() < 0.1,
        "paper: avg path 1.3, got {}",
        report.average_shortest_path
    );
    assert!(
        (report.transitivity - 0.80).abs() < 0.05,
        "paper: transitivity 0.80, got {}",
        report.transitivity
    );
}

#[test]
fn digraph_is_consistent_with_its_report() {
    let g = social::field_study_digraph();
    let direct = SocialGraphReport::compute(&g);
    assert_eq!(direct, social::field_study_report());
    // The paper's explicit asymmetric example: node 1 follows node 3.
    assert!(g.has_edge(0, 2) && !g.has_edge(2, 0));
}

#[test]
fn reduced_field_study_has_paper_shape() {
    // Use the default scheme (interest-based).
    let outcome = run_field_study(&small_test_config(123, FieldStudyConfig::default().scheme));
    let m = &outcome.metrics;
    assert_eq!(m.posts, 40);
    // The paper's qualitative findings, scaled down:
    // 1. most deliveries happen at one hop;
    assert!(
        outcome.one_hop_fraction() > 0.5,
        "one-hop majority violated: {}",
        outcome.one_hop_fraction()
    );
    // 2. the delay CDFs for 1-hop and All nearly coincide;
    let all = m.delays.cdf_all_hours();
    let one = m.delays.cdf_one_hop_hours();
    if !all.is_empty() && !one.is_empty() {
        let diff = (all.fraction_le(24.0) - one.fraction_le(24.0)).abs();
        assert!(diff < 0.25, "CDFs diverged by {diff}");
    }
    // 3. there are both fast and slow deliveries (delay spread).
    assert!(all.min().unwrap() < all.max().unwrap());
}

#[test]
fn seed_determinism_across_processes() {
    let cfg = small_test_config(777, sos::core::SchemeKind::InterestBased);
    let a = run_field_study(&cfg);
    let b = run_field_study(&cfg);
    assert_eq!(a.transfers(), b.transfers());
    assert_eq!(a.metrics.frames_sent, b.metrics.frames_sent);
    assert_eq!(a.metrics.frames_lost, b.metrics.frames_lost);
    assert_eq!(
        a.metrics.delivery.overall_ratio(),
        b.metrics.delivery.overall_ratio()
    );
}

#[test]
fn map_events_stay_in_area() {
    let outcome = run_field_study(&small_test_config(9, sos::core::SchemeKind::InterestBased));
    for ev in &outcome.metrics.map {
        assert!(ev.x >= 0.0 && ev.x <= 11_000.0, "x out of area: {}", ev.x);
        assert!(ev.y >= 0.0 && ev.y <= 8_000.0, "y out of area: {}", ev.y);
    }
    // Both colours of Fig. 4b appear.
    use sos::experiments::driver::MapEventKind;
    assert!(outcome
        .metrics
        .map
        .iter()
        .any(|e| e.kind == MapEventKind::Created));
    assert!(outcome
        .metrics
        .map
        .iter()
        .any(|e| e.kind == MapEventKind::Disseminated));
}
