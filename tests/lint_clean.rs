//! The live workspace must be `sos-lint`-clean: zero findings, and
//! every allow in effect must suppress something and carry a reason.
//! This is the same gate CI runs via the binary; failing here means a
//! new violation (or a stale allow) slipped into production code.

use sos_lint::{lint_workspace, Config};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root, &Config::sos_defaults()).expect("workspace scan");
    assert!(
        report.files_linted > 50,
        "scan looks wrong: only {} files linted",
        report.files_linted
    );
    assert!(
        report.is_clean(),
        "sos-lint found {} violation(s):\n{}",
        report.findings.len(),
        sos_lint::report::render_text(&report)
    );
    // The report is the audit trail for the escape hatch: every allow
    // was parsed with a non-empty reason (parse rejects empty ones) and
    // suppressed at least one finding (stale ones fail is_clean above).
    for allow in &report.allows {
        assert!(!allow.reason.is_empty(), "{}:{}", allow.file, allow.line);
        assert!(allow.suppressed > 0, "{}:{}", allow.file, allow.line);
    }
}
