//! The observability acceptance gate: instrumentation is passive.
//!
//! PR 4 established record→replay byte-identity as the repo's
//! determinism ground truth. This test re-runs that loop **with the
//! `sos-obs` layer attached** — registry-backed counters adopted,
//! journal scopes recording, span profiler enabled — and asserts the
//! observed replay is byte-identical to the blind one for every
//! routing scheme: same delivered sets, same aggregate stats, same
//! delay records, same frame counters.

use sos::core::routing::SchemeKind;
use sos::engine::{ShardConfig, ShardedContactEngine};
use sos::experiments::observe::RunObserver;
use sos::experiments::replay::{
    delivered_set, record_field_study_trace, replay_field_study, replay_field_study_observed,
};
use sos::experiments::report::path_report;
use sos::experiments::scenario::{
    field_study_followers, field_study_trajectories, run_field_study_observed,
    run_field_study_with_observed, small_test_config,
};
use sos::obs::journal::ObsEvent;
use sos::sim::radio::RadioTech;

#[test]
fn instrumented_replay_is_byte_identical_for_every_scheme() {
    let mut cfg = small_test_config(17, SchemeKind::Epidemic);
    cfg.days = 1;
    cfg.total_posts = 25;
    let trace = record_field_study_trace(&cfg);

    for scheme in SchemeKind::ALL {
        let mut cfg = cfg.clone();
        cfg.scheme = scheme;
        let blind = replay_field_study(&cfg, &trace);
        // Profiling on: the spans around the driver tick, sync, verify,
        // and codec paths must also leave the run untouched.
        let observer = RunObserver::with_profiling();
        let observed = replay_field_study_observed(&cfg, &trace, &observer);
        let observation = observer.finish();

        assert_eq!(
            delivered_set(&blind),
            delivered_set(&observed),
            "{scheme:?}: instrumentation changed the delivered set"
        );
        assert_eq!(
            blind.totals, observed.totals,
            "{scheme:?}: instrumentation changed the aggregate stats"
        );
        assert_eq!(
            blind.metrics, observed.metrics,
            "{scheme:?}: instrumentation changed the run metrics"
        );

        // And the observation actually observed: counters mirror the
        // stats, the journal saw the contacts the tape replayed.
        assert_eq!(
            observation.metrics.counters["driver/frames_sent"], observed.metrics.frames_sent,
            "{scheme:?}: registry out of sync with driver metrics"
        );
        let contact_ups = observation
            .journal
            .entries()
            .filter(|e| matches!(e.event, ObsEvent::ContactUp { .. }))
            .count();
        assert!(
            contact_ups > 0,
            "{scheme:?}: journal recorded no contacts on a tape with encounters"
        );
        assert!(
            !observation.profile.is_empty(),
            "{scheme:?}: profiling was enabled but captured no spans"
        );
    }
}

#[test]
fn observed_journal_is_deterministic_across_runs() {
    let mut cfg = small_test_config(9, SchemeKind::InterestBased);
    cfg.days = 1;
    cfg.total_posts = 20;
    let trace = record_field_study_trace(&cfg);

    let a = RunObserver::new();
    let b = RunObserver::new();
    replay_field_study_observed(&cfg, &trace, &a);
    replay_field_study_observed(&cfg, &trace, &b);
    let ja = a.finish().journal;
    let jb = b.finish().journal;
    assert_eq!(ja.to_jsonl(), jb.to_jsonl(), "journal must be reproducible");
    assert_eq!(a.finish().metrics, b.finish().metrics);
}

/// The PATH-REPORT (provenance DAGs + delivery forensics, PR 9) is a
/// pure function of the journal, so the record→replay ground truth
/// extends to it: the report rendered from a live observed run and
/// from an observed replay of its recorded tape must be byte-identical
/// for every scheme.
#[test]
fn path_report_is_byte_identical_across_record_and_replay() {
    let mut cfg = small_test_config(17, SchemeKind::Epidemic);
    cfg.days = 1;
    cfg.total_posts = 25;
    let trace = record_field_study_trace(&cfg);
    let followers = field_study_followers();

    for scheme in SchemeKind::ALL {
        let mut cfg = cfg.clone();
        cfg.scheme = scheme;

        let live_obs = RunObserver::new();
        run_field_study_observed(&cfg, &live_obs);
        let live = path_report("live", &live_obs.finish(), &followers, scheme, 5);

        let replay_obs = RunObserver::new();
        replay_field_study_observed(&cfg, &trace, &replay_obs);
        let replayed = path_report("live", &replay_obs.finish(), &followers, scheme, 5);

        assert_eq!(
            live, replayed,
            "{scheme:?}: PATH-REPORT diverged between live run and replay"
        );
        assert!(
            live.contains("why messages died"),
            "{scheme:?}: empty report"
        );
    }
}

/// The PATH-REPORT is also shard-count invariant: feeding the field
/// study from the sharded contact engine at K=1 and K=4 (different
/// thread counts too) must render byte-identical reports, because the
/// merged encounter stream — and hence the journal — is canonical.
#[test]
fn path_report_is_byte_identical_across_shard_counts() {
    let mut cfg = small_test_config(23, SchemeKind::InterestBased);
    cfg.days = 1;
    cfg.total_posts = 25;
    let trajectories = field_study_trajectories(&cfg);
    let range_m = RadioTech::max_range_m(cfg.infra_available);
    let followers = field_study_followers();

    let mut reports = Vec::new();
    for (shards, threads) in [(1usize, 1usize), (4, 2)] {
        let source = ShardedContactEngine::from_trajectories(
            &trajectories,
            range_m,
            cfg.contact_tick,
            ShardConfig {
                shards,
                epoch_ticks: 8,
                threads,
            },
        );
        let observer = RunObserver::new();
        run_field_study_with_observed(&cfg, source, &observer);
        reports.push(path_report(
            "sharded",
            &observer.finish(),
            &followers,
            cfg.scheme,
            5,
        ));
    }
    assert_eq!(
        reports[0], reports[1],
        "PATH-REPORT diverged between shard counts K=1 and K=4"
    );
}
