//! The observability acceptance gate: instrumentation is passive.
//!
//! PR 4 established record→replay byte-identity as the repo's
//! determinism ground truth. This test re-runs that loop **with the
//! `sos-obs` layer attached** — registry-backed counters adopted,
//! journal scopes recording, span profiler enabled — and asserts the
//! observed replay is byte-identical to the blind one for every
//! routing scheme: same delivered sets, same aggregate stats, same
//! delay records, same frame counters.

use sos::core::routing::SchemeKind;
use sos::experiments::observe::RunObserver;
use sos::experiments::replay::{
    delivered_set, record_field_study_trace, replay_field_study, replay_field_study_observed,
};
use sos::experiments::scenario::small_test_config;
use sos::obs::journal::ObsEvent;

#[test]
fn instrumented_replay_is_byte_identical_for_every_scheme() {
    let mut cfg = small_test_config(17, SchemeKind::Epidemic);
    cfg.days = 1;
    cfg.total_posts = 25;
    let trace = record_field_study_trace(&cfg);

    for scheme in SchemeKind::ALL {
        let mut cfg = cfg.clone();
        cfg.scheme = scheme;
        let blind = replay_field_study(&cfg, &trace);
        // Profiling on: the spans around the driver tick, sync, verify,
        // and codec paths must also leave the run untouched.
        let observer = RunObserver::with_profiling();
        let observed = replay_field_study_observed(&cfg, &trace, &observer);
        let observation = observer.finish();

        assert_eq!(
            delivered_set(&blind),
            delivered_set(&observed),
            "{scheme:?}: instrumentation changed the delivered set"
        );
        assert_eq!(
            blind.totals, observed.totals,
            "{scheme:?}: instrumentation changed the aggregate stats"
        );
        assert_eq!(
            blind.metrics, observed.metrics,
            "{scheme:?}: instrumentation changed the run metrics"
        );

        // And the observation actually observed: counters mirror the
        // stats, the journal saw the contacts the tape replayed.
        assert_eq!(
            observation.metrics.counters["driver/frames_sent"], observed.metrics.frames_sent,
            "{scheme:?}: registry out of sync with driver metrics"
        );
        let contact_ups = observation
            .journal
            .entries()
            .filter(|e| matches!(e.event, ObsEvent::ContactUp { .. }))
            .count();
        assert!(
            contact_ups > 0,
            "{scheme:?}: journal recorded no contacts on a tape with encounters"
        );
        assert!(
            !observation.profile.is_empty(),
            "{scheme:?}: profiling was enabled but captured no spans"
        );
    }
}

#[test]
fn observed_journal_is_deterministic_across_runs() {
    let mut cfg = small_test_config(9, SchemeKind::InterestBased);
    cfg.days = 1;
    cfg.total_posts = 20;
    let trace = record_field_study_trace(&cfg);

    let a = RunObserver::new();
    let b = RunObserver::new();
    replay_field_study_observed(&cfg, &trace, &a);
    replay_field_study_observed(&cfg, &trace, &b);
    let ja = a.finish().journal;
    let jb = b.finish().journal;
    assert_eq!(ja.to_jsonl(), jb.to_jsonl(), "journal must be reproducible");
    assert_eq!(a.finish().metrics, b.finish().metrics);
}
