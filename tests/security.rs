//! Cross-crate security integration: every §IV property enforced through
//! the full stack — identity detection, source verification, integrity,
//! revocation — plus the adversarial cases the paper's design must stop.

use rand::SeedableRng;
use sos::core::prelude::*;
use sos::core::{Bundle, MessageId, SosMessage};
use sos::crypto::ca::{CertificateAuthority, Validator};
use sos::crypto::ed25519::SigningKey;
use sos::crypto::x25519::AgreementKey;
use sos::crypto::{DeviceIdentity, UserId};
use sos::net::Frame;
use sos::social::{AlleyOopApp, Cloud};
use std::collections::VecDeque;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn pump(a: &mut AlleyOopApp, b: &mut AlleyOopApp, now: SimTime, seed: u64) {
    let mut r = rng(seed);
    let ad = a.middleware().advertisement(now);
    let mut queue: VecDeque<(PeerId, PeerId, Frame)> = b
        .middleware_mut()
        .handle_frame(a.peer_id(), Frame::Advertisement(ad), now, &mut r)
        .into_iter()
        .map(|(dst, f)| (b.peer_id(), dst, f))
        .collect();
    let mut guard = 0;
    while let Some((src, dst, frame)) = queue.pop_front() {
        guard += 1;
        assert!(guard < 100_000, "frame storm");
        let target = if dst == a.peer_id() { &mut *a } else { &mut *b };
        for (d, f) in target
            .middleware_mut()
            .handle_frame(src, frame, now, &mut r)
        {
            let s = target.peer_id();
            queue.push_back((s, d, f));
        }
    }
}

/// A device with a certificate from a *different* CA (an impostor
/// infrastructure) cannot establish a session with legitimate users.
#[test]
fn foreign_ca_cannot_join_the_network() {
    let mut r = rng(1);
    let mut real_cloud = Cloud::new("AlleyOop Root CA", [1; 32]);
    let mut fake_cloud = Cloud::new("AlleyOop Root CA", [66; 32]); // same name!
    let mut alice = AlleyOopApp::sign_up(
        &mut real_cloud,
        PeerId(0),
        "alice",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();
    let mut mallory = AlleyOopApp::sign_up(
        &mut fake_cloud,
        PeerId(1),
        "mallory",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();
    mallory.post("evil content", SimTime::from_secs(1));
    // Direction 1: alice browses mallory's advertisement and initiates;
    // the handshake dies at the first certificate check (mallory's
    // honest stack rejects alice's foreign certificate as responder).
    pump(&mut mallory, &mut alice, SimTime::from_secs(2), 7);
    alice.process_events_at(SimTime::from_secs(2));
    assert_eq!(alice.middleware().store().len(), 0, "no content crossed");

    // Direction 2: alice posts, mallory browses and initiates — now
    // *alice* is the responder and her validator must reject mallory's
    // certificate.
    alice.post("legit content", SimTime::from_secs(3));
    pump(&mut alice, &mut mallory, SimTime::from_secs(4), 8);
    assert_eq!(mallory.middleware().store().len(), 1, "only her own post");
    assert!(
        alice.middleware().stats().security_rejections > 0,
        "alice must reject the foreign certificate"
    );
    assert!(
        mallory.middleware().stats().security_rejections > 0,
        "mallory's honest stack rejected alice too"
    );
}

/// A legitimate-session peer forwarding a *tampered* bundle is caught by
/// the end-to-end signature even though the session itself is valid.
#[test]
fn tampered_forwarded_bundle_rejected() {
    let mut r = rng(2);
    let mut cloud = Cloud::new("AlleyOop Root CA", [1; 32]);
    let mut alice = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(0),
        "alice",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();
    let mut bob = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(1),
        "bob",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();
    let mut carol = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(2),
        "carol",
        SchemeKind::Epidemic,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();

    alice.post("original", SimTime::from_secs(1));
    pump(&mut alice, &mut bob, SimTime::from_secs(2), 8);
    assert_eq!(bob.middleware().store().len(), 1);

    // Bob's device is compromised: it alters the stored payload before
    // forwarding to Carol.
    let id = MessageId {
        author: alice.user_id(),
        number: 1,
    };
    // Direct store surgery via the testing backdoor: re-encode the
    // bundle with a modified payload but the original signature.
    let stored = bob.middleware().store().get(&id).unwrap().clone();
    let mut tampered = stored.clone();
    tampered.message.payload = b"fake news".to_vec();
    // Re-inject through Carol's verification path.
    let validator = Validator::new(cloud.root_certificate().clone());
    assert!(stored.verify(&validator, 10).is_ok());
    assert!(tampered.verify(&validator, 10).is_err());

    // And through the live session path: craft the frame stream by
    // pumping normally after poisoning bob's store is not possible via
    // the public API (the store only accepts verified bundles), so the
    // wire-level check above is the enforcement point Carol relies on.
    pump(&mut bob, &mut carol, SimTime::from_secs(3), 9);
    carol.process_events_at(SimTime::from_secs(3));
    assert_eq!(carol.feed().len(), 0, "carol does not follow alice");
    assert_eq!(
        carol.middleware().store().len(),
        1,
        "genuine bundle carried under epidemic"
    );
}

/// Revocation: after a CRL sync, content and sessions from the revoked
/// device are refused network-wide.
#[test]
fn revoked_device_is_cut_off() {
    let mut r = rng(3);
    let mut cloud = Cloud::new("AlleyOop Root CA", [1; 32]);
    let mut alice = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(0),
        "alice",
        SchemeKind::InterestBased,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();
    let mut bob = AlleyOopApp::sign_up(
        &mut cloud,
        PeerId(1),
        "bob",
        SchemeKind::InterestBased,
        SimTime::ZERO,
        &mut r,
    )
    .unwrap();
    bob.follow(alice.user_id());

    // Pre-revocation delivery works.
    alice.post("before revocation", SimTime::from_secs(10));
    pump(&mut alice, &mut bob, SimTime::from_secs(11), 10);
    bob.process_events_at(SimTime::from_secs(11));
    assert_eq!(bob.feed().len(), 1);

    // Alice's key leaks; the CA revokes her. Bob syncs while online.
    cloud.revoke_user(&alice.user_id()).unwrap();
    bob.set_online(true);
    bob.sync_with_cloud(&mut cloud, SimTime::from_secs(20));

    alice.post("after revocation", SimTime::from_secs(30));
    pump(&mut alice, &mut bob, SimTime::from_secs(31), 11);
    bob.process_events_at(SimTime::from_secs(31));
    assert_eq!(bob.feed().len(), 1, "no new content from revoked device");
    assert!(bob.middleware().stats().security_rejections > 0);
}

/// Sealed-box direct messages survive multi-hop forwarding and only the
/// recipient can open them.
#[test]
fn sealed_direct_message_end_to_end() {
    let mut r = rng(4);
    // Keys for sender and recipient.
    let recipient_keys = AgreementKey::generate(&mut r);
    let plaintext = b"meet at the library at noon";
    let sealed = sos::crypto::sealed::seal(&mut r, recipient_keys.public(), plaintext).unwrap();
    // Any forwarder sees only ciphertext.
    let eavesdropper = AgreementKey::generate(&mut r);
    assert!(sos::crypto::sealed::open(&eavesdropper, &sealed).is_err());
    assert_eq!(
        sos::crypto::sealed::open(&recipient_keys, &sealed).unwrap(),
        plaintext
    );
}

/// A certificate whose subject does not match the message author is
/// rejected even when both are individually valid (stolen-certificate
/// replay).
#[test]
fn certificate_author_binding_enforced() {
    let mut ca = CertificateAuthority::new("Root", [5; 32], 0, u64::MAX);
    let alice_sk = SigningKey::from_seed([1; 32]);
    let alice_ak = AgreementKey::from_secret([2; 32]);
    let mallory_sk = SigningKey::from_seed([3; 32]);
    let mallory_ak = AgreementKey::from_secret([4; 32]);
    let alice_uid = UserId::from_str_padded("alice");
    let mallory_uid = UserId::from_str_padded("mallory");
    let _alice_cert = ca.issue(
        alice_uid,
        "Alice",
        alice_sk.verifying_key(),
        *alice_ak.public(),
        0,
    );
    let mallory_cert = ca.issue(
        mallory_uid,
        "Mallory",
        mallory_sk.verifying_key(),
        *mallory_ak.public(),
        0,
    );
    let validator = Validator::new(ca.root_certificate().clone());

    // Mallory signs a message claiming to be alice and attaches her own
    // (valid) certificate.
    let msg = SosMessage::create(
        &mallory_sk,
        alice_uid,
        1,
        SimTime::ZERO,
        MessageKind::Post,
        b"i am alice, trust me".to_vec(),
    );
    let bundle = Bundle::new(msg, mallory_cert);
    assert!(
        bundle.verify(&validator, 10).is_err(),
        "author/subject mismatch must be rejected"
    );
}

/// DeviceIdentity refuses to assemble with someone else's certificate.
#[test]
#[should_panic(expected = "certificate subject mismatch")]
fn identity_assembly_is_strict() {
    let mut ca = CertificateAuthority::new("Root", [5; 32], 0, u64::MAX);
    let alice_sk = SigningKey::from_seed([1; 32]);
    let alice_ak = AgreementKey::from_secret([2; 32]);
    let cert = ca.issue(
        UserId::from_str_padded("alice"),
        "Alice",
        alice_sk.verifying_key(),
        *alice_ak.public(),
        0,
    );
    let _ = DeviceIdentity::new(
        UserId::from_str_padded("bob"),
        alice_sk,
        alice_ak,
        cert,
        Validator::new(ca.root_certificate().clone()),
    );
}
