//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in an environment with no crates.io access, so
//! the real serde cannot be fetched. Nothing in the repo serialises at
//! runtime — the derives only need to *parse* — so these derive macros
//! accept the usual syntax (including `#[serde(...)]` helper attributes)
//! and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
