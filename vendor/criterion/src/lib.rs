//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so the real criterion
//! cannot be fetched. This crate keeps the same authoring surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `iter`/`iter_batched`, throughput annotations) and
//! implements it with a small adaptive wall-clock harness: each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! fixed measurement window, and the mean time per iteration is printed
//! as `bench-name ... time: <t>` (plus throughput when annotated).
//!
//! It is deliberately simpler than the real thing — no outlier
//! rejection, no HTML reports — but the numbers are honest means over
//! hundreds of milliseconds of sampling, good enough for the
//! order-of-magnitude comparisons the workspace's benches make.

// A benchmark harness is *the* legitimate wall-clock consumer; the
// workspace-wide `disallowed-methods` ban on `Instant::now` (replay
// determinism, see clippy.toml) does not apply here.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized (accepted, ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher<'a> {
    measurement: Duration,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call, also used to scale the iteration count.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = Some(start.elapsed() / iters as u32);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, setup: S, routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter_batched(setup, routine, BatchSize::SmallInput);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let warm = Instant::now();
        black_box(routine(input));
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.result = Some(total / iters as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(
    name: &str,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut result = None;
    let mut bencher = Bencher {
        measurement,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some(per_iter) => {
            let rate = throughput.map(|tp| match tp {
                Throughput::Bytes(n) => {
                    let gib = n as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
                    format!(" thrpt: {gib:.3} GiB/s")
                }
                Throughput::Elements(n) => {
                    let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
                    format!(" thrpt: {meps:.3} Melem/s")
                }
            });
            println!(
                "{name:<50} time: {:<12}{}",
                format_duration(per_iter),
                rate.unwrap_or_default()
            );
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

/// The benchmark manager: registers and immediately runs benchmarks.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let measurement = self.measurement;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            measurement,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes itself by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs a benchmark under `group-name/id`.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.measurement, self.throughput, &mut f);
        self
    }

    /// Finishes the group (no-op; benchmarks already ran).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).throughput(Throughput::Bytes(1024));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
