//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no registry access. The workspace only ever
//! seeds RNGs explicitly (every run is a pure function of `(config,
//! seed)`), so thread-local and OS entropy sources are deliberately
//! absent. The generator behind [`rngs::StdRng`] is xoshiro256++ seeded
//! through SplitMix64 — different numbers than the real `StdRng`
//! (ChaCha12), but the same determinism contract: identical seeds yield
//! identical streams on every platform.
//!
//! Implemented surface: [`RngCore`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] /
//! [`SeedableRng::from_seed`], and [`seq::SliceRandom::shuffle`].

use std::ops::{Range, RangeInclusive};

/// The core of every generator: raw random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    /// Draws a uniform sample. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A debiased uniform draw from `[0, span)`; `span == 0` stands for
/// the full 2⁶⁴ domain.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Modular span: correct for signed types too, and a
                // half-open non-empty range always fits in u64.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // end - start + 1 wraps to 0 exactly when the range
                // covers the full 64-bit domain, which sample_below
                // treats as "any word" — so `..=T::MAX` never
                // overflows, for any start.
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a word-sized seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5..=1.5f64);
            assert!((-1.5..=1.5).contains(&f));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
        }
    }

    #[test]
    fn extreme_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_range(1u64..=u64::MAX) >= 1);
            let _ = rng.gen_range(u64::MIN..=u64::MAX);
            assert!(rng.gen_range(i64::MIN..=-1i64) < 0);
            assert_eq!(rng.gen_range(u8::MAX..=u8::MAX), u8::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
