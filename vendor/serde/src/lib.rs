//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the real serde
//! cannot be fetched. Nothing in this workspace serialises data at
//! runtime; the crates only *derive* the traits (for future wire/disk
//! formats) and `sos-crypto` writes two manual impls. This crate
//! provides exactly the trait surface those uses need to type-check,
//! and re-exports no-op derive macros from `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Error helpers mirroring `serde::de`.
pub mod de {
    use std::fmt::Display;

    /// The deserialisation error trait: only the constructors the
    /// workspace calls.
    pub trait Error: Sized + Display {
        /// A custom error message.
        fn custom<T: Display>(msg: T) -> Self;
        /// An input of the wrong length.
        fn invalid_length(len: usize, expected: &dyn Display) -> Self {
            Self::custom(format_args!("invalid length {len}, expected {expected}"))
        }
    }
}

/// Error helpers mirroring `serde::ser`.
pub mod ser {
    use std::fmt::Display;

    /// The serialisation error trait.
    pub trait Error: Sized + Display {
        /// A custom error message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A type that can be serialised.
pub trait Serialize {
    /// Serialises `self` into the given serialiser.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialised.
pub trait Deserialize<'de>: Sized {
    /// Deserialises a value from the given deserialiser.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format serialiser (byte-blob subset).
pub trait Serializer: Sized {
    /// Output of a successful serialisation.
    type Ok;
    /// Serialisation error type.
    type Error: ser::Error;
    /// Serialises a byte blob.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A data-format deserialiser (byte-blob subset).
pub trait Deserializer<'de>: Sized {
    /// Deserialisation error type.
    type Error: de::Error;
    /// Deserialises a byte blob.
    fn deserialize_bytes(self) -> Result<Vec<u8>, Self::Error>;
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bytes()
    }
}
