//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access. This crate keeps the
//! authoring surface the workspace uses — the [`proptest!`] macro,
//! `prop_assert*!`, `prop_assume!`, [`any`], `prop::collection::{vec,
//! btree_map}`, `prop::array::uniform{12,32}`, numeric-range and
//! char-class string strategies, tuples, and [`Strategy::prop_map`] —
//! and implements it as a plain deterministic random-case runner:
//! each test draws `ProptestConfig::cases` inputs from a seed derived
//! from the test name and runs the body on each.
//!
//! No shrinking is performed; a failing case panics with the assertion
//! message. That is a real reduction in diagnostic power versus actual
//! proptest, accepted in exchange for building fully offline.

use rand::{Rng, SeedableRng};

/// The deterministic RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// Derives the per-test RNG from the test's name (FNV-1a), so runs are
/// reproducible without any global state.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test should fail.
    Fail(String),
    /// `prop_assume!` filtered the input; draw another case.
    Reject(String),
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A generated-collection size range `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Character-class string strategies.
///
/// Supports the `[class]{m,n}` regex subset the workspace's tests use:
/// a single character class (literals and `a-z` style ranges) followed
/// by a `{min,max}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[chars]{m,n}` / `[chars]{n}` into (alphabet, min, max).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let class_end = rest.find(']')?;
    let class: Vec<char> = rest[..class_end].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (start, end) = (class[i] as u32, class[i + 2] as u32);
            if start > end {
                return None;
            }
            alphabet.extend((start..=end).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = rest[class_end + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeMap` with keys and values drawn from the given strategies.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates maps with *up to* `size` entries (key collisions merge,
    /// as in real proptest).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// An `[S::Value; N]` strategy drawing each element from `element`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// A 12-element array strategy.
    pub fn uniform12<S: Strategy>(element: S) -> UniformArray<S, 12> {
        UniformArray { element }
    }

    /// A 32-element array strategy.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray { element }
    }
}

/// The `prop::` namespace mirror.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Rejects the current case (draws a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-declaration macro: same syntax as real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} attempts for {} passes)",
                        stringify!($name), attempts, passed
                    );
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!("proptest {} failed: {}", stringify!($name), message)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parser() {
        let (alphabet, lo, hi) = super::parse_class_pattern("[a-c9 ]{2,5}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '9', ' ']);
        assert_eq!((lo, hi), (2, 5));
        assert!(super::parse_class_pattern("plain").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 5u64..10, f in -1.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_sizes(v in prop::collection::vec(any::<u8>(), 1..4),
                             m in prop::collection::btree_map(0u64..50, any::<u8>(), 0..6)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(m.len() < 6);
        }

        #[test]
        fn strings_match_class(s in "[a-z]{1,10}") {
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn arrays_and_maps(a in prop::array::uniform32(any::<u8>()),
                           pair in (0u32..10, 0.0f64..1.0)) {
            prop_assert_eq!(a.len(), 32);
            prop_assert!(pair.0 < 10);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
