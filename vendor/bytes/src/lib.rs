//! Offline stand-in for `bytes`.
//!
//! Provides the little-endian [`Buf`]/[`BufMut`] cursor traits and a
//! [`BytesMut`] growable buffer — exactly the subset `sos-net`'s frame
//! codec uses. `BytesMut` is a thin wrapper over `Vec<u8>`; `Buf` is
//! implemented for `&[u8]` by advancing the slice itself.

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Copies `dst.len()` bytes out of the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// The written bytes, as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_slice(b"xy");
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 17);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 300);
        assert_eq!(cursor.get_u32_le(), 70_000);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slice_indexing_via_deref() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3, 4]);
        assert_eq!(&buf[..2], &[1, 2]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4]);
    }
}
